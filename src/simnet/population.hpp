// Wild subscriber population of the ISP (paper Sec. 6.2).
//
// Models N broadband subscriber lines. Each line owns a set of IoT devices
// drawn from the catalog's per-product penetration rates, plus "virtual"
// devices representing third-party hardware that integrates a platform the
// testbed covers (the Alexa-in-a-fridge case — DetectionUnit::
// wild_extra_penetration). Ownership, addressing, and identifier churn are
// all deterministic functions of (seed, line), so any slice of the
// population can be regenerated independently.
//
// Nothing is materialized per line. Ownership is regenerated on demand in
// blocks of kBlockLines lines, held in a small LRU cache of immutable
// shared blocks (DESIGN.md §12): the paper's 15 M-line ISP (Sec. 6,
// Fig. 11) costs O(cache_blocks · kBlockLines) memory regardless of N,
// while populations up to cache_blocks · kBlockLines lines (256 k at the
// defaults — larger than every pre-scale workload) stay fully resident and
// behave exactly like the old materialized CSR. Streaming consumers use
// for_each_active_line, which walks blocks in order without retaining them.
//
// Addressing model: each line lives in a regional pool of four /24s shared
// with 63 neighbours. Identifier rotation (router reboots, daily
// re-assignment) moves the line to a different address within its pool,
// which is exactly the effect Fig. 13 smooths by aggregating at /24 level.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "net/ip_address.hpp"
#include "simnet/catalog.hpp"
#include "util/sim_clock.hpp"

namespace haystack::simnet {

/// Subscriber line index.
using LineId = std::uint32_t;

/// One device owned by a line.
struct OwnedDevice {
  /// Product, or nullopt for a virtual wild-extra device of `unit`.
  std::optional<ProductId> product;
  /// The device's own detection unit (ancestors implied).
  UnitId unit = 0;
};

/// Population tunables.
struct PopulationConfig {
  std::uint64_t seed = 99;
  std::uint32_t lines = 200'000;
  /// Per-day probability that a line's identifier rotates (router reboot,
  /// re-assignment; the ISP's churn is "pretty low", Sec. 6.2).
  double daily_rotation_probability = 0.03;
  /// Fraction of lines with IPv6 connectivity.
  double dual_stack_fraction = 0.35;
  /// Ownership-block LRU capacity. Blocks cover kBlockLines lines each, so
  /// the default keeps 64 · 4096 = 262 144 lines hot — every pre-scale
  /// workload fits entirely; a 15 M-line sweep cycles blocks in bounded
  /// memory.
  std::uint32_t cache_blocks = 64;
};

/// The (lazily generated) population.
class Population {
 public:
  /// Lines per ownership block; one deterministic regeneration unit.
  static constexpr std::uint32_t kBlockLines = 4096;

  Population(const Catalog& catalog, const PopulationConfig& config);

  [[nodiscard]] std::uint32_t line_count() const noexcept {
    return config_.lines;
  }

  /// Devices owned by a line (possibly empty). The span stays valid until
  /// the calling thread's next devices_of / for_each_active_line call on
  /// this Population (the thread pins the backing block; streaming callers
  /// should prefer for_each_active_line).
  [[nodiscard]] std::span<const OwnedDevice> devices_of(LineId line) const;

  /// Streams every line owning at least one device, ascending, with its
  /// devices. The span is valid only during the callback.
  void for_each_active_line(
      const std::function<void(LineId, std::span<const OwnedDevice>)>& fn)
      const;

  /// Number of lines owning at least one device (computed on first use via
  /// one streaming pass, then cached).
  [[nodiscard]] std::uint64_t active_line_count() const;

  /// The subscriber address (identifier) of a line on a given day,
  /// reflecting identifier rotation.
  [[nodiscard]] net::IpAddress address_of(LineId line,
                                          util::DayBin day) const;

  /// True when the line has IPv6 connectivity (dual stack).
  [[nodiscard]] bool dual_stack(LineId line) const;

  /// The line's IPv6 identifier (a /56-derived address). Valid only for
  /// dual-stack lines; stable across the window (v6 prefixes rotate far
  /// less than v4 addresses at real ISPs).
  [[nodiscard]] net::IpAddress address6_of(LineId line) const;

  /// Number of identifier rotations the line has experienced up to and
  /// including `day`.
  [[nodiscard]] unsigned epoch_of(LineId line, util::DayBin day) const;

  [[nodiscard]] const Catalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] const PopulationConfig& config() const noexcept {
    return config_;
  }

  /// Fraction of lines owning at least one catalog or virtual device.
  [[nodiscard]] double device_penetration() const;

  /// Bytes held by the ownership-block cache plus fixed members — the
  /// number the streaming design bounds (old CSR: O(lines)).
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  // One regenerated ownership block: devices of line (first_line + i) are
  // devices[offsets[i] .. offsets[i+1]). Immutable once built; shared_ptr
  // so readers outlive eviction.
  struct Block {
    LineId first_line = 0;
    std::uint32_t line_span = 0;
    std::vector<std::uint32_t> offsets;
    std::vector<OwnedDevice> devices;
    std::vector<LineId> active;  // lines in-block owning ≥1 device

    [[nodiscard]] std::span<const OwnedDevice> devices_of(
        LineId line) const {
      const std::uint32_t i = line - first_line;
      return {devices.data() + offsets[i], devices.data() + offsets[i + 1]};
    }
    [[nodiscard]] std::uint64_t bytes() const noexcept {
      return sizeof(Block) + offsets.capacity() * sizeof(std::uint32_t) +
             devices.capacity() * sizeof(OwnedDevice) +
             active.capacity() * sizeof(LineId);
    }
  };

  struct Candidate {
    std::optional<ProductId> product;
    UnitId unit = 0;
    double penetration = 0.0;
  };

  [[nodiscard]] std::shared_ptr<const Block> block_for(LineId line) const;
  [[nodiscard]] std::shared_ptr<const Block> build_block(
      std::uint32_t index) const;

  const Catalog& catalog_;
  PopulationConfig config_;
  std::vector<Candidate> candidates_;

  // LRU over block index → block; guarded by cache_mutex_. Hot path is a
  // hash lookup + recency bump; regeneration happens outside the lock is
  // not needed at this tier (block builds are rare and cheap relative to
  // the per-line simulation work they feed).
  mutable std::mutex cache_mutex_;
  struct CacheSlot {
    std::uint32_t index = 0;
    std::uint64_t last_use = 0;
    std::shared_ptr<const Block> block;
  };
  mutable std::vector<CacheSlot> cache_;
  mutable std::uint64_t cache_clock_ = 0;
  mutable std::atomic<std::uint64_t> cached_bytes_{0};

  // active_line_count / device_penetration are one full streaming pass;
  // computed once on demand.
  mutable std::once_flag active_count_once_;
  mutable std::uint64_t active_count_ = 0;
};

}  // namespace haystack::simnet
