#include "vantage/aggregator.hpp"

#include <algorithm>
#include <bit>
#include <tuple>
#include <utility>

#include "core/checkpoint.hpp"
#include "flow/wire.hpp"

namespace haystack::vantage {

namespace {

/// One resolved, sortable staged row.
struct ResolvedRow {
  flow::DeltaRow row;
  core::ServiceId service = 0;
};

core::Evidence evidence_of(const flow::DeltaRow& row) noexcept {
  core::Evidence ev;
  ev.set_mask(0, row.mask0);
  ev.set_mask(1, row.mask1);
  ev.set_packets(row.packets);
  ev.set_first_seen(row.first_seen);
  return ev;
}

void join_row(flow::DeltaRow& into, const flow::DeltaRow& from) noexcept {
  into.mask0 |= from.mask0;
  into.mask1 |= from.mask1;
  into.packets = std::max(into.packets, from.packets);
  into.first_seen = std::min(into.first_seen, from.first_seen);
}

}  // namespace

Aggregator::Aggregator(const core::Hitlist& hitlist,
                       const core::RuleSet& rules,
                       const AggregatorConfig& config, obs::Observability* obs)
    : rules_{rules},
      config_{config},
      obs_{obs},
      global_{hitlist, rules, config.detector} {
  core::ServiceId max_id = 0;
  for (const auto& r : rules.rules) max_id = std::max(max_id, r.service);
  satisfy_.assign(static_cast<std::size_t>(max_id) + 1, std::nullopt);
  for (const auto& r : rules.rules) {
    satisfy_[r.service] =
        core::compile_satisfy_rule(r, config.detector.threshold);
  }
  if (obs_ != nullptr) {
    auto& reg = obs_->registry;
    m_offered_ = reg.counter("vantage_deltas_offered_total");
    m_rejected_ = reg.counter("vantage_deltas_rejected_total");
    m_stale_ = reg.counter("vantage_deltas_stale_total");
    m_duplicates_ = reg.counter("vantage_delta_duplicates_total");
    m_sealed_ = reg.counter("vantage_epochs_sealed_total");
    m_rows_ = reg.counter("vantage_rows_merged_total");
    m_bytes_ = reg.counter("vantage_delta_bytes_total");
    m_merged_epoch_ = reg.gauge("vantage_merged_epoch");
    m_staged_depth_ = reg.gauge("vantage_staged_epochs");
  }
  publish_live_locked();  // live() is never null
}

void Aggregator::publish_live_locked() {
  auto snap = std::make_shared<LiveSnapshot>();
  snap->merged_through = last_sealed_;
  snap->epochs_sealed = counters_.epochs_sealed;
  snap->stats = global_.stats();
  snap->compiled = global_.version();
  snap->evidence = global_.evidence_map();  // merge-prefix clone
  live_.store(std::move(snap));
}

void Aggregator::add_collector(std::uint32_t id, util::HourBin first_epoch) {
  std::lock_guard lock{mu_};
  auto [it, inserted] =
      collectors_.try_emplace(id, std::make_unique<CollectorState>());
  if (!inserted) return;  // restart keeps its registration
  CollectorState& st = *it->second;
  st.first_epoch = first_epoch;
  st.seq = flow::SequenceTracker{config_.reorder_window};
  if (obs_ != nullptr) {
    m_healthy_[id] = obs_->registry.gauge(
        "vantage_collector_healthy", {{"collector", std::to_string(id)}});
    m_healthy_[id]->set(1);
  }
}

OfferResult Aggregator::reject(std::uint32_t collector, std::size_t bytes,
                               std::string reason) {
  ++counters_.rejected;
  if (m_rejected_) m_rejected_->add(1);
  if (obs_ != nullptr) {
    obs_->recorder.record(obs::EventKind::kDeltaRejected, collector, bytes);
  }
  return {false, 0, std::move(reason)};
}

OfferResult Aggregator::offer(std::span<const std::uint8_t> datagram) {
  std::lock_guard lock{mu_};
  ++counters_.offered;
  if (m_offered_) m_offered_->add(1);

  flow::EvidenceDelta delta;
  std::string derr;
  if (!flow::decode_delta(datagram, delta, &derr)) {
    return reject(0, datagram.size(), std::move(derr));
  }
  if (delta.kind != flow::DeltaKind::kDelta) {
    return reject(delta.collector, datagram.size(),
                  "snapshot offered to aggregator");
  }
  if (delta.threshold_bits !=
      std::bit_cast<std::uint64_t>(config_.detector.threshold)) {
    return reject(delta.collector, datagram.size(),
                  "delta built under a different threshold");
  }
  const auto cit = collectors_.find(delta.collector);
  if (cit == collectors_.end()) {
    return reject(delta.collector, datagram.size(), "unknown collector");
  }
  CollectorState& st = *cit->second;

  // Resolve every label before touching any state: one unknown name
  // rejects the whole delta (satellite: intern handles are process-local,
  // so rows travel as strings and are remapped here).
  std::vector<ResolvedRow> rows;
  rows.reserve(delta.rows.size());
  for (const flow::DeltaRow& row : delta.rows) {
    core::ServiceId service = 0;
    if (!core::resolve_service_label(delta.labels[row.label], rules_,
                                     service)) {
      return reject(delta.collector, datagram.size(),
                    "delta references an unknown rule name");
    }
    rows.push_back({row, service});
  }
  // Canonical order + in-datagram dedup, so staging never depends on how
  // the emitter (or an adversarial peer) arranged its rows.
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return std::tie(a.row.subscriber, a.service) <
           std::tie(b.row.subscriber, b.service);
  });

  const auto outcome = st.seq.classify(delta.seq);
  switch (outcome.event) {
    case flow::SequenceEvent::kRestart:
      ++st.restarts;
      ++counters_.restarts;
      st.seq.reset();
      if (obs_ != nullptr) {
        obs_->recorder.record(obs::EventKind::kExporterRestart,
                              vantage_source(delta.collector), st.restarts);
      }
      st.seq.commit(delta.seq, 1, st.seq.classify(delta.seq));
      break;
    case flow::SequenceEvent::kGap:
      if (obs_ != nullptr) {
        obs_->recorder.record(obs::EventKind::kSequenceGap,
                              vantage_source(delta.collector),
                              outcome.lost_units);
      }
      st.seq.commit(delta.seq, 1, outcome);
      break;
    case flow::SequenceEvent::kReplay:
      ++counters_.duplicates;
      if (m_duplicates_) m_duplicates_->add(1);
      if (obs_ != nullptr) {
        obs_->recorder.record(obs::EventKind::kSequenceReplay,
                              vantage_source(delta.collector));
      }
      st.seq.commit(delta.seq, 1, outcome);
      break;
    default:
      st.seq.commit(delta.seq, 1, outcome);
      break;
  }

  counters_.delta_bytes += datagram.size();
  if (m_bytes_) m_bytes_->add(datagram.size());

  // Retransmission of an epoch already folded globally: the cumulative
  // state it carries is subsumed by st.cum — dropping it IS the
  // idempotent merge.
  if ((st.merged_through && delta.epoch <= *st.merged_through) ||
      delta.epoch < st.first_epoch) {
    ++counters_.stale;
    if (m_stale_) m_stale_->add(1);
    refresh_health();
    return {true, 0, "stale"};
  }

  auto [sit, fresh] = st.staged.try_emplace(delta.epoch);
  Staged& staged = sit->second;
  if (fresh) {
    staged.rows.reserve(rows.size());
    for (const ResolvedRow& rr : rows) {
      if (!staged.rows.empty() &&
          staged.rows.back().subscriber == rr.row.subscriber &&
          staged.services.back() == rr.service) {
        join_row(staged.rows.back(), rr.row);
        continue;
      }
      staged.rows.push_back(rr.row);
      staged.services.push_back(rr.service);
    }
    staged.stats = {delta.flows, delta.matched};
  } else {
    // Duplicate/reordered offer of a staged epoch: join row-by-row (a
    // faithful retransmission joins to a no-op).
    std::size_t i = 0;
    for (const ResolvedRow& rr : rows) {
      const auto key = std::tie(rr.row.subscriber, rr.service);
      while (i < staged.rows.size() &&
             std::tie(staged.rows[i].subscriber, staged.services[i]) < key) {
        ++i;
      }
      if (i < staged.rows.size() &&
          std::tie(staged.rows[i].subscriber, staged.services[i]) == key) {
        join_row(staged.rows[i], rr.row);
      } else {
        staged.rows.insert(staged.rows.begin() + static_cast<std::ptrdiff_t>(i),
                           rr.row);
        staged.services.insert(
            staged.services.begin() + static_cast<std::ptrdiff_t>(i),
            rr.service);
      }
    }
    staged.stats.flows = std::max(staged.stats.flows, delta.flows);
    staged.stats.matched = std::max(staged.stats.matched, delta.matched);
  }

  const unsigned sealed = try_seal();
  if (sealed != 0) publish_live_locked();
  refresh_health();
  return {true, sealed, ""};
}

unsigned Aggregator::try_seal() {
  unsigned sealed = 0;
  for (;;) {
    util::HourBin epoch = 0;
    if (last_sealed_) {
      epoch = *last_sealed_ + 1;
    } else {
      bool have = false;
      for (const auto& [id, st] : collectors_) {
        epoch = have ? std::min(epoch, st->first_epoch) : st->first_epoch;
        have = true;
      }
      if (!have) break;
    }
    bool any = false;
    bool ready = true;
    for (const auto& [id, st] : collectors_) {
      if (st->first_epoch > epoch) continue;
      any = true;
      if (st->staged.find(epoch) == st->staged.end()) {
        ready = false;
        break;
      }
    }
    if (!any || !ready) break;
    seal_epoch(epoch);
    ++sealed;
    ++counters_.epochs_sealed;
    if (m_sealed_) m_sealed_->add(1);
    last_sealed_ = epoch;
  }
  return sealed;
}

void Aggregator::seal_epoch(util::HourBin epoch) {
  std::vector<std::pair<core::SubscriberKey, core::ServiceId>> touched;
  unsigned participants = 0;
  std::uint64_t folded_rows = 0;
  core::Detector::Stats gstats = global_.stats();

  for (auto& [id, stp] : collectors_) {
    CollectorState& st = *stp;
    const auto sit = st.staged.find(epoch);
    if (sit == st.staged.end()) continue;
    ++participants;
    Staged& staged = sit->second;

    for (std::size_t i = 0; i < staged.rows.size(); ++i) {
      const flow::DeltaRow& row = staged.rows[i];
      const core::ServiceId service = staged.services[i];
      const core::Evidence incoming = evidence_of(row);

      bool inserted = false;
      core::Evidence& cum =
          st.cum.find_or_insert(row.subscriber, service, inserted);
      const std::uint64_t prev_packets = inserted ? 0 : cum.packets();
      if (inserted) {
        cum = incoming;
      } else {
        core::merge_evidence(cum, incoming);
      }
      // Cumulative counters are max-joined, so this advance is the exact
      // number of packets the collector sampled for this row since its
      // last merged epoch — added to the global sum exactly once.
      const std::uint64_t packet_delta = cum.packets() - prev_packets;

      const core::Evidence* g = global_.evidence(row.subscriber, service);
      core::Evidence merged = g != nullptr ? *g : core::Evidence{};
      if (g == nullptr) merged.set_first_seen(incoming.first_seen());
      merged.or_mask(0, incoming.mask(0));
      merged.or_mask(1, incoming.mask(1));
      merged.add_packets(packet_delta);
      merged.set_first_seen(
          std::min(merged.first_seen(), incoming.first_seen()));
      global_.restore_evidence(row.subscriber, service, merged);
      touched.emplace_back(row.subscriber, service);
      ++folded_rows;
    }

    if (staged.stats.flows > st.cum_stats.flows) {
      gstats.flows += staged.stats.flows - st.cum_stats.flows;
      st.cum_stats.flows = staged.stats.flows;
    }
    if (staged.stats.matched > st.cum_stats.matched) {
      gstats.matched += staged.stats.matched - st.cum_stats.matched;
      st.cum_stats.matched = staged.stats.matched;
    }
    st.merged_through = epoch;
    st.staged.erase(sit);
  }
  global_.restore_stats(gstats);
  counters_.rows_merged += folded_rows;
  if (m_rows_) m_rows_->add(folded_rows);

  // Satisfaction pass — only after every collector's slice of this epoch
  // is folded is the hour-`epoch` global mask complete; a mid-fold check
  // could stamp an hour a single-process detector never saw.
  for (const auto& [subscriber, service] : touched) {
    const core::Evidence* g = global_.evidence(subscriber, service);
    if (g == nullptr || g->satisfied()) continue;
    if (service < satisfy_.size() && satisfy_[service] &&
        core::evidence_satisfies(*g, *satisfy_[service])) {
      core::Evidence updated = *g;
      updated.set_satisfied_hour(epoch);
      global_.restore_evidence(subscriber, service, updated);
    }
  }

  if (obs_ != nullptr) {
    obs_->recorder.record(obs::EventKind::kDeltaMerged, epoch, participants,
                          folded_rows);
  }
  if (m_merged_epoch_) m_merged_epoch_->set(epoch);
}

void Aggregator::refresh_health() {
  util::HourBin fleet_max = 0;
  bool have = false;
  const auto progress_of = [](const CollectorState& st) {
    util::HourBin progress = st.merged_through.value_or(
        st.first_epoch == 0 ? 0 : st.first_epoch - 1);
    if (!st.staged.empty()) {
      progress = std::max(progress, st.staged.rbegin()->first);
    }
    return progress;
  };
  for (const auto& [id, st] : collectors_) {
    const util::HourBin p = progress_of(*st);
    fleet_max = have ? std::max(fleet_max, p) : p;
    have = true;
  }
  std::size_t staged_depth = 0;
  for (const auto& [id, st] : collectors_) {
    staged_depth += st->staged.size();
    if (obs_ != nullptr) {
      const auto it = m_healthy_.find(id);
      if (it != m_healthy_.end()) {
        const bool ok =
            progress_of(*st) + config_.stale_after >= fleet_max;
        it->second->set(ok ? 1 : 0);
      }
    }
  }
  if (m_staged_depth_) {
    m_staged_depth_->set(static_cast<std::int64_t>(staged_depth));
  }
}

bool Aggregator::healthy(std::uint32_t id) const {
  std::lock_guard lock{mu_};
  const auto it = collectors_.find(id);
  if (it == collectors_.end()) return false;
  const auto progress_of = [](const CollectorState& st) {
    util::HourBin progress = st.merged_through.value_or(
        st.first_epoch == 0 ? 0 : st.first_epoch - 1);
    if (!st.staged.empty()) {
      progress = std::max(progress, st.staged.rbegin()->first);
    }
    return progress;
  };
  util::HourBin fleet_max = 0;
  for (const auto& [cid, st] : collectors_) {
    fleet_max = std::max(fleet_max, progress_of(*st));
  }
  return progress_of(*it->second) + config_.stale_after >= fleet_max;
}

std::optional<util::HourBin> Aggregator::acked_through(
    std::uint32_t id) const {
  std::lock_guard lock{mu_};
  const auto it = collectors_.find(id);
  if (it == collectors_.end()) return std::nullopt;
  return it->second->merged_through;
}

std::vector<std::uint8_t> Aggregator::encode_snapshot(
    const CollectorState& st, std::uint32_t id) const {
  flow::EvidenceDelta snap;
  snap.collector = id;
  snap.seq = 0;
  snap.epoch = st.merged_through.value_or(0);
  snap.kind = flow::DeltaKind::kSnapshot;
  snap.threshold_bits =
      std::bit_cast<std::uint64_t>(config_.detector.threshold);
  snap.flows = st.cum_stats.flows;
  snap.matched = st.cum_stats.matched;

  struct Row {
    core::SubscriberKey subscriber;
    core::ServiceId service;
    core::Evidence ev;
  };
  std::vector<Row> rows;
  st.cum.for_each([&rows](core::SubscriberKey sub, core::ServiceId svc,
                          const core::Evidence& ev) {
    rows.push_back({sub, svc, ev});
  });
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return std::tie(a.subscriber, a.service) <
           std::tie(b.subscriber, b.service);
  });
  std::map<std::string, std::uint32_t> label_index;
  for (const Row& row : rows) {
    const core::DetectionRule* rule = rules_.rule_for(row.service);
    const std::string label = rule != nullptr
                                  ? rule->name
                                  : "svc/" + std::to_string(row.service);
    const auto [it, inserted] = label_index.try_emplace(
        label, static_cast<std::uint32_t>(snap.labels.size()));
    if (inserted) snap.labels.push_back(label);
    flow::DeltaRow out;
    out.subscriber = row.subscriber;
    out.label = it->second;
    out.mask0 = row.ev.mask(0);
    out.mask1 = row.ev.mask(1);
    out.packets = row.ev.packets();
    out.first_seen = row.ev.first_seen();
    snap.rows.push_back(out);
  }
  return flow::encode_delta(snap);
}

std::vector<std::uint8_t> Aggregator::snapshot_for(std::uint32_t id) const {
  std::lock_guard lock{mu_};
  const auto it = collectors_.find(id);
  if (it == collectors_.end() || !it->second->merged_through) return {};
  return encode_snapshot(*it->second, id);
}

std::vector<std::uint8_t> Aggregator::save() const {
  std::lock_guard lock{mu_};
  flow::ByteWriter w;
  w.u32(kAggregatorMagic);
  w.u32(kAggregatorVersion);
  w.u64(std::bit_cast<std::uint64_t>(config_.detector.threshold));
  w.u8(last_sealed_ ? 1 : 0);
  w.u32(last_sealed_.value_or(0));
  w.u32(static_cast<std::uint32_t>(collectors_.size()));
  for (const auto& [id, st] : collectors_) {
    w.u32(id);
    w.u32(st->first_epoch);
    w.u8(st->merged_through ? 1 : 0);
    w.u32(st->merged_through.value_or(0));
    w.u32(st->restarts);
    const auto snap = encode_snapshot(*st, id);
    w.u32(static_cast<std::uint32_t>(snap.size()));
    w.bytes(snap);
  }
  const auto global_blob = core::save_checkpoint_compact(global_);
  w.u64(global_blob.size());
  w.bytes(global_blob);
  return w.take();
}

bool Aggregator::restore(std::span<const std::uint8_t> blob,
                         std::string* error) {
  std::lock_guard lock{mu_};
  // Any failure below clears ALL aggregator state (global and
  // per-collector), mirroring the InternTable cleared-on-failed-restore
  // contract: a corrupt blob must not leave a half-merged evidence map.
  const auto fail = [this, error](const char* why) {
    global_.clear();
    global_.restore_stats({});
    collectors_.clear();
    last_sealed_.reset();
    publish_live_locked();  // live readers must not keep pre-fail state
    if (error != nullptr) *error = why;
    if (obs_ != nullptr) {
      obs_->recorder.record(obs::EventKind::kCheckpointRejected, 0, 0);
    }
    return false;
  };

  flow::ByteReader r{blob};
  if (r.u32() != kAggregatorMagic) return fail("bad aggregator magic");
  if (r.u32() != kAggregatorVersion) {
    return fail("unsupported aggregator version");
  }
  if (r.u64() != std::bit_cast<std::uint64_t>(config_.detector.threshold)) {
    return fail("aggregator state written under a different threshold");
  }
  const bool has_sealed = r.u8() != 0;
  const std::uint32_t last_sealed = r.u32();
  const std::uint32_t count = r.u32();
  if (!r.ok()) return fail("truncated aggregator header");

  struct ParsedCollector {
    std::uint32_t id = 0;
    util::HourBin first_epoch = 0;
    std::optional<util::HourBin> merged_through;
    std::uint32_t restarts = 0;
    flow::EvidenceDelta snapshot;
    std::vector<core::ServiceId> services;  ///< parallel to snapshot.rows
  };
  std::vector<ParsedCollector> parsed;
  parsed.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ParsedCollector pc;
    pc.id = r.u32();
    pc.first_epoch = r.u32();
    const bool has_merged = r.u8() != 0;
    const std::uint32_t merged = r.u32();
    if (has_merged) pc.merged_through = merged;
    pc.restarts = r.u32();
    const std::uint32_t snap_len = r.u32();
    if (!r.ok() || snap_len > r.remaining()) {
      return fail("truncated aggregator collector section");
    }
    flow::ByteReader snap_reader = r.slice(snap_len);
    if (!flow::decode_delta(snap_reader.rest(), pc.snapshot)) {
      return fail("malformed embedded collector snapshot");
    }
    if (pc.snapshot.kind != flow::DeltaKind::kSnapshot ||
        pc.snapshot.collector != pc.id ||
        pc.snapshot.threshold_bits !=
            std::bit_cast<std::uint64_t>(config_.detector.threshold)) {
      return fail("inconsistent embedded collector snapshot");
    }
    for (const flow::DeltaRow& row : pc.snapshot.rows) {
      core::ServiceId service = 0;
      if (!core::resolve_service_label(pc.snapshot.labels[row.label], rules_,
                                       service)) {
        return fail("embedded snapshot references an unknown rule name");
      }
      pc.services.push_back(service);
    }
    parsed.push_back(std::move(pc));
  }
  const std::uint64_t global_len = r.u64();
  if (!r.ok() || global_len != r.remaining()) {
    return fail("aggregator global section size mismatch");
  }
  const std::span<const std::uint8_t> global_blob = r.rest();

  // Structure validated — install. The global checkpoint restore is the
  // last validation step; its failure clears everything too.
  global_.clear();
  global_.restore_stats({});
  collectors_.clear();
  last_sealed_.reset();
  std::string gerr;
  if (!core::restore_checkpoint(global_blob, global_, &gerr,
                                obs_ != nullptr ? &obs_->recorder : nullptr)) {
    return fail("malformed embedded global checkpoint");
  }
  for (ParsedCollector& pc : parsed) {
    auto st = std::make_unique<CollectorState>();
    st->first_epoch = pc.first_epoch;
    st->merged_through = pc.merged_through;
    st->restarts = pc.restarts;
    st->cum_stats = {pc.snapshot.flows, pc.snapshot.matched};
    st->seq = flow::SequenceTracker{config_.reorder_window};
    for (std::size_t i = 0; i < pc.snapshot.rows.size(); ++i) {
      bool inserted = false;
      st->cum.find_or_insert(pc.snapshot.rows[i].subscriber, pc.services[i],
                             inserted) = evidence_of(pc.snapshot.rows[i]);
    }
    if (obs_ != nullptr && m_healthy_.find(pc.id) == m_healthy_.end()) {
      m_healthy_[pc.id] = obs_->registry.gauge(
          "vantage_collector_healthy",
          {{"collector", std::to_string(pc.id)}});
    }
    collectors_.emplace(pc.id, std::move(st));
  }
  last_sealed_ = has_sealed ? std::optional<util::HourBin>{last_sealed}
                            : std::nullopt;
  publish_live_locked();
  refresh_health();
  if (error != nullptr) error->clear();
  return true;
}

void Aggregator::clear() {
  std::lock_guard lock{mu_};
  global_.clear();
  global_.restore_stats({});
  collectors_.clear();
  last_sealed_.reset();
  publish_live_locked();
}

std::optional<util::HourBin> Aggregator::merged_through() const {
  std::lock_guard lock{mu_};
  return last_sealed_;
}

core::Detector::Stats Aggregator::stats() const {
  std::lock_guard lock{mu_};
  return global_.stats();
}

std::optional<core::Evidence> Aggregator::evidence(
    core::SubscriberKey subscriber, core::ServiceId service) const {
  std::lock_guard lock{mu_};
  const core::Evidence* ev = global_.evidence(subscriber, service);
  if (ev == nullptr) return std::nullopt;
  return *ev;
}

void Aggregator::for_each_evidence(
    const std::function<void(core::SubscriberKey, core::ServiceId,
                             const core::Evidence&)>& fn) const {
  std::lock_guard lock{mu_};
  global_.for_each_evidence(fn);
}

std::optional<util::HourBin> Aggregator::detection_hour(
    core::SubscriberKey subscriber, core::ServiceId service) const {
  std::lock_guard lock{mu_};
  return global_.detection_hour(subscriber, service);
}

Aggregator::Counters Aggregator::counters() const {
  std::lock_guard lock{mu_};
  return counters_;
}

}  // namespace haystack::vantage
