// Scenario configuration: text-driven overrides for the simulated world,
// so studies (different penetrations, sampling rates, population sizes)
// run without recompiling. Line-oriented format, '#' comments:
//
//   lines 200000
//   sampling 1000
//   rotation 0.03
//   dual_stack 0.35
//   base_active_prob 0.09
//   seed 42
//   penetration "Echo Dot" 0.05        # override one product
//   wild_extra "Alexa Enabled" 0.10    # override a unit's extra share
//   impair_drop 0.05                   # export-path fault injection
//   impair_duplicate 0.02
//   impair_reorder 0.02
//   impair_truncate 0.01
//   impair_seed 7
//   pipeline_shards 8                   # streaming-pipeline shape
//   pipeline_queue 1024
//   pipeline_wave 64
//   vantage_collectors 4                # multi-vantage fleet shape
//   delta_drop 0.05                     # delta-channel fault injection
//   delta_duplicate 0.02
//   delta_reorder 0.02
//   delta_truncate 0.01
//   delta_seed 7
//   ack_loss 0.1
//   vantage_kill_collector 1            # scripted mid-study crash
//   vantage_kill_hour 3
//   vantage_restart_hour 6
//
// Product/unit names are quoted; unknown names are reported as errors so
// typos fail loudly instead of silently simulating the default.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "flow/impairment.hpp"
#include "simnet/catalog.hpp"
#include "simnet/population.hpp"
#include "simnet/wild_isp.hpp"

namespace haystack::simnet {

/// Parsed scenario.
struct Scenario {
  std::optional<std::uint64_t> seed;
  std::optional<std::uint32_t> lines;
  std::optional<std::uint32_t> sampling;
  std::optional<double> rotation;
  std::optional<double> dual_stack;
  std::optional<double> base_active_prob;
  std::vector<std::pair<std::string, double>> penetration_overrides;
  std::vector<std::pair<std::string, double>> wild_extra_overrides;
  std::optional<double> impair_drop;
  std::optional<double> impair_duplicate;
  std::optional<double> impair_reorder;
  std::optional<double> impair_truncate;
  std::optional<std::uint64_t> impair_seed;
  // Streaming-pipeline shape (pipeline::IngestPipeline): detector shards,
  // per-stage queue capacity, adaptive-batch wave bound. All >= 1.
  std::optional<std::uint32_t> pipeline_shards;
  std::optional<std::uint32_t> pipeline_queue;
  std::optional<std::uint32_t> pipeline_wave;
  // Multi-vantage fleet shape (vantage::Fleet, ISSUE 7): collector count,
  // delta-channel impairment, ack loss, and the scripted mid-study
  // collector kill/restart.
  std::optional<std::uint32_t> vantage_collectors;
  std::optional<double> delta_drop;
  std::optional<double> delta_duplicate;
  std::optional<double> delta_reorder;
  std::optional<double> delta_truncate;
  std::optional<std::uint64_t> delta_seed;
  std::optional<double> ack_loss;
  std::optional<std::uint32_t> vantage_kill_collector;
  std::optional<std::uint32_t> vantage_kill_hour;
  std::optional<std::uint32_t> vantage_restart_hour;

  /// Applies the population-level settings over `base`.
  [[nodiscard]] PopulationConfig apply(PopulationConfig base) const;

  /// Applies the wild-simulation settings over `base`.
  [[nodiscard]] WildIspConfig apply(WildIspConfig base) const;

  /// Applies penetration/wild-extra overrides to a catalog copy. Returns
  /// false (with `error`) when a name does not exist.
  bool apply_overrides(Catalog& catalog, std::string* error = nullptr) const;

  /// Export-path impairment, when any impair_* key was given. nullopt
  /// means a pristine (lossless) export path.
  [[nodiscard]] std::optional<flow::ImpairmentConfig> impairment() const;

  /// Delta-channel impairment (collector → aggregator), when any delta_*
  /// key was given. nullopt means a pristine delta channel.
  [[nodiscard]] std::optional<flow::ImpairmentConfig> delta_impairment()
      const;
};

/// Parses a scenario file. Returns nullopt on syntax errors, with a
/// message in `error` when non-null.
[[nodiscard]] std::optional<Scenario> parse_scenario(
    std::istream& is, std::string* error = nullptr);

}  // namespace haystack::simnet
