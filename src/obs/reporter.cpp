#include "obs/reporter.hpp"

#include "obs/export.hpp"

namespace haystack::obs {

Reporter::Reporter(MetricRegistry& registry, ReporterConfig config, Sink sink)
    : registry_{registry}, config_{config}, sink_{std::move(sink)} {}

Reporter::~Reporter() { stop(); }

void Reporter::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard lock{mu_};
    stop_requested_ = false;
  }
  thread_ = std::thread{[this] { run(); }};
}

void Reporter::stop() {
  {
    std::lock_guard lock{mu_};
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Reporter::scrape_now() { do_scrape(); }

void Reporter::run() {
  std::unique_lock lock{mu_};
  while (!stop_requested_) {
    if (cv_.wait_for(lock, config_.period,
                     [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    do_scrape();
    lock.lock();
  }
}

void Reporter::do_scrape() {
  const std::string rendered = config_.format == ExportFormat::kPrometheus
                                   ? to_prometheus(registry_)
                                   : to_json(registry_);
  const std::uint64_t n =
      scrapes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.recorder != nullptr) {
    config_.recorder->record(EventKind::kScrape, 0, n, rendered.size());
  }
  if (sink_) sink_(rendered);
}

}  // namespace haystack::obs
