// DNS message codec (RFC 1035 subset: A / AAAA / CNAME).
//
// Sec. 7.4 of the paper observes that the methodology would be simpler if
// the ISP could consume its resolver's query stream. This codec plus
// dns::ResolverFeed implement that pathway: parse real DNS response
// messages (including compression pointers) and turn their answer sections
// into passive-DNS records.
//
// The encoder produces valid uncompressed messages (compression is an
// optimization, never a requirement); the decoder handles compression,
// bounds-checks everything, and refuses pointer loops.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dns/fqdn.hpp"
#include "net/ip_address.hpp"

namespace haystack::dns {

/// DNS RR types handled by this codec.
enum class WireType : std::uint16_t {
  kA = 1,
  kCname = 5,
  kAaaa = 28,
};

/// One parsed resource record.
struct WireRecord {
  Fqdn name;
  WireType type = WireType::kA;
  std::uint32_t ttl = 0;
  net::IpAddress address;  ///< for A/AAAA
  Fqdn target;             ///< for CNAME
};

/// A parsed DNS message (the subset the feed needs).
struct WireMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t rcode = 0;
  std::optional<Fqdn> question;       ///< first question, if present
  std::vector<WireRecord> answers;    ///< answer-section A/AAAA/CNAME only
};

/// Builds a response message for `question` with the given answer records.
/// Unknown-type records are not encodable; A/AAAA/CNAME only.
[[nodiscard]] std::vector<std::uint8_t> encode_response(
    std::uint16_t id, const Fqdn& question,
    const std::vector<WireRecord>& answers);

/// Parses a message. Returns nullopt on malformed input (truncation, bad
/// labels, compression loops). Unknown RR types in the answer section are
/// skipped, not errors.
[[nodiscard]] std::optional<WireMessage> decode_message(
    std::span<const std::uint8_t> data);

}  // namespace haystack::dns
