// Threshold alerting over view publications (ISSUE 8).
//
// The AlertEngine rides the ShardedDetector publish hook: every time a
// shard worker publishes a new view, the engine diffs it against the view
// it replaced and raises alert events for the transitions operators page
// on — new detections landed, a shard crossed into degraded confidence,
// or the observed channel loss spiked. Alerts are flight-recorder events
// (kAlertNewDetection / kAlertConfidenceDegraded / kAlertLossSpike, so
// they ride the existing dump/export paths into both exporters) plus
// per-kind registry counters; the engine itself keeps only monotone
// totals. Runs on shard worker threads — everything here is lock-free
// and touches only the two immutable views it is handed.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/read_view.hpp"
#include "obs/observability.hpp"

namespace haystack::serve {

/// Alert thresholds.
struct AlertConfig {
  /// Raise kAlertNewDetection when a published view carries at least this
  /// many new coverage-met transitions relative to its predecessor.
  std::uint64_t min_new_detections = 1;
  /// Raise kAlertLossSpike when observed loss jumps by at least this much
  /// between consecutive views of one shard.
  double loss_spike_delta = 0.05;
};

/// Flight-recorder source tag for alert events: 'q' (query/serve plane)
/// in the top byte, the shard index below.
[[nodiscard]] inline std::uint32_t alert_source(unsigned shard) noexcept {
  return (std::uint32_t{'q'} << 24U) | (shard & 0x00ffffffU);
}

class AlertEngine {
 public:
  /// `obs` may be null (events and counters are then skipped; totals
  /// still accumulate for tests).
  explicit AlertEngine(AlertConfig config, obs::Observability* obs = nullptr);

  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  /// ShardedDetector::PublishHook body. Called by shard workers, one
  /// publication at a time per shard (concurrently across shards).
  void on_publish(const core::ShardView* prev, const core::ShardView& now);

  [[nodiscard]] std::uint64_t new_detection_alerts() const noexcept {
    return new_detection_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t confidence_degraded_alerts() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t loss_spike_alerts() const noexcept {
    return loss_spike_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_alerts() const noexcept {
    return new_detection_alerts() + confidence_degraded_alerts() +
           loss_spike_alerts();
  }
  [[nodiscard]] const AlertConfig& config() const noexcept { return config_; }

 private:
  AlertConfig config_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::shared_ptr<obs::Counter> new_detection_counter_;
  std::shared_ptr<obs::Counter> degraded_counter_;
  std::shared_ptr<obs::Counter> loss_spike_counter_;
  std::atomic<std::uint64_t> new_detection_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> loss_spike_{0};
};

}  // namespace haystack::serve
