// Bounded blocking queue — the backpressure primitive of the streaming
// ingest pipeline (haystack::pipeline).
//
// A mutex+condvar ring usable MPSC or MPMC. push() blocks while the queue
// is full, so backpressure propagates upstream stage by stage until the
// datagram producer itself slows down; pop()/pop_wave() block while the
// queue is empty. close() starts the drain-then-stop protocol: new pushes
// are refused, consumers keep draining until the queue is empty and then
// see end-of-stream (nullopt / 0). reopen() supports restart-after-drain.
//
// Every queue keeps its own telemetry::StageStats (depth, throughput,
// producer/consumer stalls, adaptive-batch waves) so a deployment can see
// exactly which stage is the bottleneck. A queue may additionally carry an
// obs::FlightRecorder: each producer stall then lands as a
// kBackpressureStall event (source = stage tag, a = depth at stall), so a
// post-mortem dump shows *which* stage pushed back and when.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "telemetry/counters.hpp"

namespace haystack::pipeline {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity,
                        obs::FlightRecorder* recorder = nullptr,
                        std::uint32_t stage_tag = 0)
      : capacity_{std::max<std::size_t>(1, capacity)},
        recorder_{recorder},
        stage_tag_{stage_tag} {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full (backpressure). Returns false — and
  /// drops the item — when the queue is closed.
  bool push(T item) {
    std::unique_lock lock{mu_};
    if (items_.size() >= capacity_ && !closed_) {
      ++stats_.producer_stalls;
      if (recorder_ != nullptr) {
        recorder_->record(obs::EventKind::kBackpressureStall, stage_tag_,
                          items_.size());
      }
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    ++stats_.enqueued;
    stats_.max_depth = std::max(stats_.max_depth, items_.size());
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. nullopt means closed and fully
  /// drained — end of stream.
  std::optional<T> pop() {
    std::unique_lock lock{mu_};
    if (items_.empty() && !closed_) {
      ++stats_.consumer_stalls;
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.dequeued;
    not_full_.notify_one();
    return item;
  }

  /// Adaptive batching: blocks for the first item, then claims whatever
  /// else is already queued, up to `max` items, in one critical section.
  /// Returns the number of items appended to `out`; 0 means closed and
  /// fully drained.
  std::size_t pop_wave(std::vector<T>& out, std::size_t max) {
    std::unique_lock lock{mu_};
    if (items_.empty() && !closed_) {
      ++stats_.consumer_stalls;
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    }
    const std::size_t n = std::min(std::max<std::size_t>(1, max),
                                   items_.size());
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (n > 0) {
      stats_.dequeued += n;
      ++stats_.waves;
      not_full_.notify_all();
    }
    return n;
  }

  /// Refuse new pushes; wake everyone. Consumers drain what remains.
  void close() {
    std::lock_guard lock{mu_};
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Reopens a closed queue (restart-after-drain). Counters survive.
  void reopen() {
    std::lock_guard lock{mu_};
    closed_ = false;
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mu_};
    return closed_;
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard lock{mu_};
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] telemetry::StageStats stats() const {
    std::lock_guard lock{mu_};
    telemetry::StageStats s = stats_;
    s.depth = items_.size();
    s.capacity = capacity_;
    // Per-queue the summed high-water IS the high-water; aggregation via
    // operator+= then keeps the sum and the max as distinct quantities.
    s.high_water_sum = s.max_depth;
    return s;
  }

 private:
  const std::size_t capacity_;
  obs::FlightRecorder* const recorder_;
  const std::uint32_t stage_tag_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  telemetry::StageStats stats_;  // depth/capacity filled at snapshot time
};

}  // namespace haystack::pipeline
