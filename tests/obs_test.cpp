// Observability suite (ISSUE 5).
//
// Covers the obs primitives standalone (registry semantics, log2 bucket
// math, exporter round-trips, flight-recorder ring behaviour, reporter
// scheduling) and their integration with the pipeline: deterministic
// flight-recorder replay of the seeded exporter-restart fault scenario,
// registry-backed conservation self-checks, and a concurrent
// scrape-while-ingesting workload that the TSan acceptance pass runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/detector.hpp"
#include "flow/impairment.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/reporter.hpp"
#include "obs/span.hpp"
#include "pipeline/ingest.hpp"
#include "simnet/ground_truth.hpp"
#include "telemetry/border_fleet.hpp"

namespace haystack {
namespace {

using obs::EventKind;
using obs::Histogram;
using obs::Labels;
using obs::MetricRegistry;

// --- Registry semantics ----------------------------------------------------

TEST(MetricRegistryTest, GetOrCreateReturnsSameInstance) {
  MetricRegistry reg;
  auto a = reg.counter("flows_total");
  auto b = reg.counter("flows_total");
  EXPECT_EQ(a.get(), b.get());
  a->add(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistryTest, LabelsDistinguishSeries) {
  MetricRegistry reg;
  auto decode = reg.counter("wave_items", {{"stage", "decode"}});
  auto meter = reg.counter("wave_items", {{"stage", "meter"}});
  EXPECT_NE(decode.get(), meter.get());
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricRegistryTest, KindCollisionReturnsDetachedMetric) {
  MetricRegistry reg;
  auto c = reg.counter("depth");
  auto g = reg.gauge("depth");  // collides with the counter registration
  ASSERT_NE(g, nullptr);
  g->set(42);  // live, but never exported
  EXPECT_EQ(g->value(), 42);
  EXPECT_EQ(reg.size(), 1u);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, obs::MetricKind::kCounter);
  c->add(1);
  EXPECT_EQ(reg.snapshot()[0].counter, 1u);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndDeterministic) {
  MetricRegistry reg;
  reg.counter("zeta");
  reg.counter("alpha", {{"x", "2"}});
  reg.counter("alpha", {{"x", "1"}});
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(obs::series_key(snap[0].name, snap[0].labels), "alpha{x=\"1\"}");
  EXPECT_EQ(obs::series_key(snap[1].name, snap[1].labels), "alpha{x=\"2\"}");
  EXPECT_EQ(snap[2].name, "zeta");
}

TEST(MetricRegistryTest, HandlesSurviveClear) {
  MetricRegistry reg;
  auto c = reg.counter("ephemeral");
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  c->add(5);  // must not crash; handle keeps the metric alive
  EXPECT_EQ(c->value(), 5u);
}

TEST(GaugeTest, MaxOfIsMonotonic) {
  obs::Gauge g;
  g.max_of(10);
  g.max_of(7);
  EXPECT_EQ(g.value(), 10);
  g.max_of(12);
  EXPECT_EQ(g.value(), 12);
}

// --- Histogram bucket math -------------------------------------------------

TEST(HistogramTest, BucketOfLog2Edges) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 63u);
}

TEST(HistogramTest, UpperBoundMatchesBucketOf) {
  // Every value must satisfy v <= upper_bound(bucket_of(v)); the bound of
  // the previous bucket must be < v.
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2},
        std::uint64_t{3}, std::uint64_t{7}, std::uint64_t{8},
        std::uint64_t{1000}, std::uint64_t{1} << 40}) {
    const unsigned b = Histogram::bucket_of(v);
    EXPECT_LE(v, Histogram::upper_bound(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, Histogram::upper_bound(b - 1)) << v;
    }
  }
}

TEST(HistogramTest, RecordAndSnapshot) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(100);
  h.record(100);
  const auto s = h.snapshot();
  if (obs::kStripped) {
    EXPECT_EQ(s.count, 0u);
    return;
  }
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 201u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[Histogram::bucket_of(1)], 1u);
  EXPECT_EQ(s.buckets[Histogram::bucket_of(100)], 2u);
}

TEST(HistogramTest, QuantileCoarse) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(10);    // bucket [8,16)
  for (int i = 0; i < 10; ++i) h.record(5000);  // bucket [4096,8192)
  const auto s = h.snapshot();
  if (obs::kStripped) return;
  EXPECT_EQ(obs::histogram_quantile(s, 0.5),
            Histogram::upper_bound(Histogram::bucket_of(10)));
  EXPECT_EQ(obs::histogram_quantile(s, 0.99),
            Histogram::upper_bound(Histogram::bucket_of(5000)));
  EXPECT_EQ(obs::histogram_quantile(Histogram::Snapshot{}, 0.5), 0u);
}

// --- Exporters + round-trip ------------------------------------------------

MetricRegistry& populated_registry(MetricRegistry& reg) {
  reg.counter("flows_total", {{"stage", "decode"}})->add(1234);
  reg.counter("flows_total", {{"stage", "meter"}})->add(99);
  reg.gauge("queue_depth", {{"stage", "detect"}})->set(-7);
  auto h = reg.histogram("wave_ns", {{"stage", "decode"}});
  h->record(0);
  h->record(3);
  h->record(1000);
  reg.counter("odd_label", {{"note", "a\"b\\c\nd"}})->add(1);
  return reg;
}

TEST(ExportTest, PrometheusRoundTrip) {
  MetricRegistry reg;
  populated_registry(reg);
  const std::string text = obs::to_prometheus(reg);
  std::string error;
  const auto parsed = obs::parse_prometheus(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  std::map<std::string, double> by_key;
  for (const auto& s : *parsed) {
    std::string key = s.name;
    for (const auto& [k, v] : s.labels) key += "|" + k + "=" + v;
    by_key[key] = s.value;
  }
  EXPECT_EQ(by_key.at("flows_total|stage=decode"), 1234.0);
  EXPECT_EQ(by_key.at("flows_total|stage=meter"), 99.0);
  EXPECT_EQ(by_key.at("queue_depth|stage=detect"), -7.0);
  EXPECT_EQ(by_key.at("odd_label|note=a\"b\\c\nd"), 1.0);
  if (!obs::kStripped) {
    EXPECT_EQ(by_key.at("wave_ns_count|stage=decode"), 3.0);
    EXPECT_EQ(by_key.at("wave_ns_sum|stage=decode"), 1003.0);
    EXPECT_EQ(by_key.at("wave_ns_bucket|le=+Inf|stage=decode"), 3.0);
    // Cumulative: the le="3" bucket holds the 0 and the 3.
    EXPECT_EQ(by_key.at("wave_ns_bucket|le=3|stage=decode"), 2.0);
  }
}

TEST(ExportTest, JsonRoundTripMatchesPrometheus) {
  MetricRegistry reg;
  populated_registry(reg);
  std::string error;
  const auto from_prom = obs::parse_prometheus(obs::to_prometheus(reg), &error);
  ASSERT_TRUE(from_prom.has_value()) << error;
  const auto from_json = obs::parse_json(obs::to_json(reg), &error);
  ASSERT_TRUE(from_json.has_value()) << error;

  // Same series, same values, sample-for-sample (order included: both
  // flatten the same sorted snapshot).
  ASSERT_EQ(from_prom->size(), from_json->size());
  for (std::size_t i = 0; i < from_prom->size(); ++i) {
    EXPECT_EQ((*from_prom)[i].name, (*from_json)[i].name) << i;
    EXPECT_EQ((*from_prom)[i].labels, (*from_json)[i].labels) << i;
    EXPECT_EQ((*from_prom)[i].value, (*from_json)[i].value) << i;
  }
}

TEST(ExportTest, ParsersRejectMalformedInput) {
  std::string error;
  EXPECT_FALSE(obs::parse_prometheus("no_value_here\n", &error).has_value());
  EXPECT_FALSE(
      obs::parse_prometheus("bad{unterminated=\"x 1\n", &error).has_value());
  EXPECT_FALSE(obs::parse_json("{\"metrics\":[", &error).has_value());
  EXPECT_FALSE(obs::parse_json("{\"wrong\":[]}", &error).has_value());
  EXPECT_TRUE(obs::parse_prometheus("", &error).has_value());
  EXPECT_TRUE(obs::parse_prometheus("# just a comment\n", &error).has_value());
}

// --- Flight recorder -------------------------------------------------------

TEST(FlightRecorderTest, RingOverwritesOldest) {
  obs::FlightRecorder rec{4};
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(EventKind::kSequenceGap, 0, i);
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);
  const auto events = rec.dump();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().a, 6u);  // oldest surviving
  EXPECT_EQ(events.back().a, 9u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(FlightRecorderTest, HourStampsSubsequentEvents) {
  obs::FlightRecorder rec{8};
  rec.record(EventKind::kExporterRestart, 1);
  rec.set_hour(212);
  rec.record(EventKind::kSequenceGap, 2, 1000);
  const auto events = rec.dump();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].hour, 0u);
  EXPECT_EQ(events[1].hour, 212u);
  EXPECT_EQ(events[1].source, 2u);
}

TEST(FlightRecorderTest, JsonDumpIsWellFormed) {
  obs::FlightRecorder rec{8};
  rec.set_hour(5);
  rec.record(EventKind::kTemplateParked, 3, 260);
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"event\":\"template_parked\""), std::string::npos);
  EXPECT_NE(json.find("\"hour\":5"), std::string::npos);
  EXPECT_NE(json.find("\"a\":260"), std::string::npos);
}

TEST(FlightRecorderTest, ClearResets) {
  obs::FlightRecorder rec{8};
  rec.record(EventKind::kScrape);
  rec.clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.dump().empty());
}

// --- Span timers -----------------------------------------------------------

TEST(SpanTest, RecordsIntoHistogram) {
  Histogram h;
  { obs::SpanTimer span{&h}; }
  const auto s = h.snapshot();
  if (obs::kStripped) {
    EXPECT_EQ(s.count, 0u);
  } else {
    EXPECT_EQ(s.count, 1u);
  }
}

TEST(SpanTest, SlowSpanRecordsFlightEvent) {
  Histogram h;
  obs::FlightRecorder rec{8};
  {
    obs::SpanTimer span{&h, &rec, /*slow_threshold_ns=*/1, /*source=*/7};
    span.set_items(42);
    // Any nonzero elapsed time beats a 1 ns threshold.
  }
  if (obs::kStripped) {
    EXPECT_EQ(rec.recorded(), 0u);
    return;
  }
  const auto events = rec.dump();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kSlowWave);
  EXPECT_EQ(events[0].source, 7u);
  EXPECT_EQ(events[0].b, 42u);
  EXPECT_GT(events[0].a, 0u);
}

// --- Reporter --------------------------------------------------------------

TEST(ReporterTest, ScrapeNowDeliversParseableSnapshot) {
  MetricRegistry reg;
  reg.counter("scrapes_seen")->add(3);
  std::vector<std::string> seen;
  obs::Reporter rep{reg, {}, [&](const std::string& s) { seen.push_back(s); }};
  rep.scrape_now();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(rep.scrapes(), 1u);
  std::string error;
  ASSERT_TRUE(obs::parse_prometheus(seen[0], &error).has_value()) << error;
}

TEST(ReporterTest, BackgroundThreadScrapesPeriodically) {
  MetricRegistry reg;
  reg.counter("ticks");
  obs::FlightRecorder rec{64};
  obs::ReporterConfig config;
  config.period = std::chrono::milliseconds{5};
  config.format = obs::ExportFormat::kJson;
  config.recorder = &rec;
  std::atomic<int> delivered{0};
  obs::Reporter rep{reg, config, [&](const std::string&) { ++delivered; }};
  rep.start();
  EXPECT_TRUE(rep.running());
  while (delivered.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  rep.stop();
  EXPECT_FALSE(rep.running());
  EXPECT_GE(rep.scrapes(), 3u);
  // Each scrape left a flight event.
  const auto events = rec.dump();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kScrape);
}

TEST(ReporterTest, StopBeforeStartIsSafe) {
  MetricRegistry reg;
  obs::Reporter rep{reg, {}, nullptr};
  rep.stop();  // no thread running — must be a no-op
  rep.start();
  rep.stop();
  rep.start();  // restartable
  rep.stop();
}

// --- Concurrent scrape-while-updating (TSan workload, primitives only) -----

TEST(ObsConcurrencyTest, ScrapeWhileRecordingIsRaceFree) {
  MetricRegistry reg;
  obs::FlightRecorder rec{128};
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, &rec, &stop, t] {
      auto c = reg.counter("w", {{"t", std::to_string(t)}});
      auto h = reg.histogram("lat", {{"t", std::to_string(t)}});
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c->add(1);
        h->record(i++);
        if (i % 512 == 0) rec.record(EventKind::kSequenceGap, t, i);
      }
    });
  }
  std::string last;
  for (int i = 0; i < 200; ++i) {
    last = obs::to_prometheus(reg);
    (void)rec.dump();
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  std::string error;
  EXPECT_TRUE(obs::parse_prometheus(last, &error).has_value()) << error;
}

// --- Pipeline integration --------------------------------------------------

core::RuleSet four_domain_rules() {
  core::RuleSet rules;
  core::DetectionRule rule;
  rule.service = 1;
  rule.name = "svc";
  rule.monitored_domains = 4;
  rule.monitored_indices = {0, 1, 2, 3};
  rules.rules.push_back(std::move(rule));
  for (std::uint16_t m = 0; m < 4; ++m) {
    for (util::DayBin day = 0; day < 3; ++day) {
      rules.hitlist.add(net::IpAddress::v4(0x0a010000U + m), 443, day,
                        {1, m});
    }
  }
  return rules;
}

flow::FlowRecord pipeline_record(std::uint32_t salt) {
  flow::FlowRecord rec;
  rec.key.src = net::IpAddress::v4(0x0a800000U + salt % 16);
  rec.key.dst = net::IpAddress::v4(0x0a010000U + salt % 4);
  rec.key.src_port = static_cast<std::uint16_t>(30000 + salt % 1000);
  rec.key.dst_port = 443;
  rec.key.proto = 6;
  rec.packets = 1 + salt % 7;
  rec.bytes = 100 + salt * 13 % 5000;
  rec.start_ms = salt * 131ULL;
  rec.end_ms = salt * 131ULL + 50;
  rec.sampling = 1;
  return rec;
}

TEST(PipelineObsTest, SelfCheckPassesOnMixedIntakeAndCatchesTampering) {
  const auto rules = four_domain_rules();
  pipeline::IngestConfig cfg;
  cfg.shards = 2;
  cfg.detector.threshold = 1.0;
  // Normalizer that drops a marked subset, so the direction-drop leg of
  // the conservation identity is actually exercised.
  pipeline::Normalizer normalizer =
      [](const flow::FlowRecord& rec,
         util::HourBin hour) -> std::optional<core::Observation> {
    if (rec.key.dst_port == 9999) return std::nullopt;
    return core::Observation{.subscriber = 7,
                             .server = rec.key.dst,
                             .port = rec.key.dst_port,
                             .packets = rec.packets,
                             .hour = hour};
  };
  pipeline::IngestPipeline pipe{rules.hitlist, rules, cfg, normalizer};

  std::vector<flow::FlowRecord> flows;
  for (std::uint32_t i = 0; i < 100; ++i) {
    flows.push_back(pipeline_record(i));
    if (i % 10 == 0) flows.back().key.dst_port = 9999;  // will be dropped
  }
  ASSERT_TRUE(pipe.push_flows(flows, /*hour=*/1));
  ASSERT_TRUE(pipe.push_observations(std::vector<core::Observation>(
      5, {.subscriber = 9,
          .server = net::IpAddress::v4(0x0a010001U),
          .port = 443,
          .packets = 2,
          .hour = 1})));
  for (std::uint32_t i = 0; i < 20; ++i) {
    flow::PacketEvent packet;
    packet.key = pipeline_record(i).key;
    packet.bytes = 80;
    packet.timestamp_ms = 1000 + i * 10;
    ASSERT_TRUE(pipe.push_packet(packet, /*hour=*/1));
  }

  pipe.drain();
  auto check = pipe.self_check();
  EXPECT_TRUE(check.ok) << check.detail;

  pipe.shutdown();  // flushes the metering cache → packet conservation
  check = pipe.self_check();
  EXPECT_TRUE(check.ok) << check.detail;

  const auto st = pipe.stats();
  EXPECT_EQ(st.flows_in, 100u);
  EXPECT_EQ(st.dropped_direction, 10u);
  EXPECT_EQ(st.observations_direct, 5u);
  EXPECT_EQ(st.packets_metered, 20u);
  EXPECT_EQ(st.metered_packets_out, 20u);
  EXPECT_EQ(st.observations,
            90u + 5u + st.metered_flows);  // kept + direct + metered
  EXPECT_EQ(st.self_check_failures, 0u);

  // The registry series *are* the pipeline's counters: nudging one from
  // the outside breaks the identity, and the self-check must say so.
  pipe.observability().registry.counter("pipeline_flows_in_total")->add(1);
  check = pipe.self_check();
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.detail.find("flow conservation"), std::string::npos);
  EXPECT_EQ(pipe.stats().self_check_failures, 1u);
  const auto events = pipe.observability().recorder.dump();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, EventKind::kSelfCheckFailed);
}

TEST(PipelineObsTest, StatsFacadeAgreesWithPrometheusScrape) {
  const auto rules = four_domain_rules();
  pipeline::IngestConfig cfg;
  cfg.shards = 2;
  cfg.detector.threshold = 1.0;
  pipeline::IngestPipeline pipe{rules.hitlist, rules, cfg};

  std::vector<flow::FlowRecord> flows;
  for (std::uint32_t i = 0; i < 64; ++i) flows.push_back(pipeline_record(i));
  ASSERT_TRUE(pipe.push_flows(flows, /*hour=*/2));
  pipe.drain();

  const auto st = pipe.stats();
  const std::string text = obs::to_prometheus(pipe.observability().registry);
  std::string error;
  const auto parsed = obs::parse_prometheus(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  const auto value_of = [&](const std::string& name) -> double {
    for (const auto& s : *parsed) {
      if (s.name == name && s.labels.empty()) return s.value;
    }
    return -1.0;
  };
  EXPECT_EQ(value_of("pipeline_flows_in_total"), double(st.flows_in));
  EXPECT_EQ(value_of("pipeline_observations_total"),
            double(st.observations));
  EXPECT_EQ(value_of("pipeline_dropped_direction_total"),
            double(st.dropped_direction));

  // Per-shard detector series sum back to the observation total.
  double shard_flows = 0;
  for (const auto& s : *parsed) {
    if (s.name == "detector_flows_total") shard_flows += s.value;
  }
  EXPECT_EQ(shard_flows, double(st.observations));
}

TEST(PipelineObsTest, ScrapeWhileIngestingIsRaceFree) {
  // The TSan acceptance workload: a background Reporter scrapes the live
  // registry while two producers push flows through the full pipeline.
  const auto rules = four_domain_rules();
  pipeline::IngestConfig cfg;
  cfg.shards = 4;
  cfg.queue_capacity = 64;
  cfg.detector.threshold = 1.0;
  pipeline::IngestPipeline pipe{rules.hitlist, rules, cfg};

  std::atomic<std::uint64_t> scrape_bytes{0};
  obs::ReporterConfig rcfg;
  rcfg.period = std::chrono::milliseconds{1};
  rcfg.recorder = &pipe.observability().recorder;
  obs::Reporter reporter{pipe.observability().registry, rcfg,
                         [&scrape_bytes](const std::string& text) {
                           scrape_bytes.fetch_add(text.size());
                         }};
  reporter.start();

  std::vector<std::thread> producers;
  for (unsigned t = 0; t < 2; ++t) {
    producers.emplace_back([&pipe, t] {
      for (std::uint32_t i = 0; i < 200; ++i) {
        std::vector<flow::FlowRecord> flows;
        for (std::uint32_t j = 0; j < 8; ++j) {
          flows.push_back(pipeline_record(t * 100'000 + i * 8 + j));
        }
        if (!pipe.push_flows(std::move(flows), i % 24)) break;
      }
    });
  }
  for (auto& p : producers) p.join();
  pipe.drain();
  // The coalesced pipeline can drain this whole workload inside one
  // reporter period; give the background thread a bounded window to
  // complete a scrape before stopping so the assertion is not a race
  // against ingest speed.
  for (int spin = 0; spin < 2000 && reporter.scrapes() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  reporter.stop();

  EXPECT_GE(reporter.scrapes(), 1u);
  EXPECT_GT(scrape_bytes.load(), 0u);
  const auto check = pipe.self_check();
  EXPECT_TRUE(check.ok) << check.detail;
  EXPECT_EQ(pipe.stats().flows_in, 2u * 200u * 8u);
}

TEST(CheckpointObsTest, SaveRestoreAndRejectionRecordFlightEvents) {
  const auto rules = four_domain_rules();
  core::Detector det{rules.hitlist, rules, {.threshold = 1.0}};
  for (std::uint16_t m = 0; m < 3; ++m) {
    det.observe(7, net::IpAddress::v4(0x0a010000U + m), 443, 5, 1);
  }

  obs::FlightRecorder rec{64};
  auto blob = core::save_checkpoint(det, &rec);
  std::string error;
  ASSERT_TRUE(core::restore_checkpoint(blob, det, &error, &rec)) << error;
  auto bad = blob;
  bad[0] ^= 0xff;  // break the magic
  EXPECT_FALSE(core::restore_checkpoint(bad, det, &error, &rec));

  const auto events = rec.dump();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kCheckpointSave);
  EXPECT_EQ(events[1].kind, EventKind::kCheckpointRestore);
  EXPECT_EQ(events[2].kind, EventKind::kCheckpointRejected);
  EXPECT_EQ(events[0].a, events[1].a);  // same entry count both ways
  EXPECT_EQ(events[0].b, blob.size());
  EXPECT_GT(events[0].a, 0u);
}

// --- Deterministic flight-recorder replay of the fleet fault scenario ------

// Wire-level events follow datagram order through the single decode path,
// so two identical seeded runs must produce the same event tape. Timing-
// dependent kinds (backpressure, slow waves, scrapes) are excluded.
bool is_wire_event(EventKind kind) {
  switch (kind) {
    case EventKind::kExporterRestart:
    case EventKind::kSequenceGap:
    case EventKind::kSequenceReplay:
    case EventKind::kTemplateParked:
    case EventKind::kTemplateRecovered:
    case EventKind::kTemplateEvicted:
      return true;
    default:
      return false;
  }
}

std::vector<simnet::LabeledFlow> fleet_hour(std::uint32_t hour,
                                            std::uint32_t flows) {
  std::vector<simnet::LabeledFlow> out;
  out.reserve(flows);
  for (std::uint32_t i = 0; i < flows; ++i) {
    simnet::LabeledFlow lf;
    lf.instance = 1 + i % 40;
    lf.domain_index = i % 6;
    lf.flow = pipeline_record(hour * 100003U + i);
    lf.flow.key.dst = net::IpAddress::v4(0x34000000U + i * 3);
    lf.flow.sampling = 1;
    out.push_back(std::move(lf));
  }
  return out;
}

std::vector<obs::Event> run_seeded_fleet_scenario() {
  obs::Observability observability;
  telemetry::BorderFleetConfig config;
  config.routers = 3;
  config.sampling = 1;
  config.impairment = flow::ImpairmentConfig{.seed = 77,
                                             .drop = 0.08,
                                             .duplicate = 0.05,
                                             .reorder = 0.05,
                                             .truncate = 0.03};
  config.restart_router = 1;
  config.restart_hour = 6;
  config.obs = &observability;
  telemetry::BorderRouterFleet fleet{config};
  for (std::uint32_t hour = 0; hour < 12; ++hour) {
    observability.recorder.set_hour(hour);
    (void)fleet.observe(fleet_hour(hour, 300), hour);
  }
  std::vector<obs::Event> wire;
  for (const auto& event : observability.recorder.dump()) {
    if (is_wire_event(event.kind)) wire.push_back(event);
  }
  return wire;
}

TEST(FlightReplayTest, SeededFleetRestartScenarioReplaysDeterministically) {
  const auto first = run_seeded_fleet_scenario();
  const auto second = run_seeded_fleet_scenario();

  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].kind, second[i].kind) << "event " << i;
    EXPECT_EQ(first[i].source, second[i].source) << "event " << i;
    EXPECT_EQ(first[i].a, second[i].a) << "event " << i;
    EXPECT_EQ(first[i].b, second[i].b) << "event " << i;
    EXPECT_EQ(first[i].hour, second[i].hour) << "event " << i;
  }

  // The scheduled restart is on the tape: the fleet records it when it
  // swaps the exporter, and the collector records it again when the
  // sequence reset is detected on ingest.
  bool saw_restart = false;
  for (const auto& event : first) {
    if (event.kind == EventKind::kExporterRestart) {
      saw_restart = true;
      EXPECT_EQ(event.hour, 6u);
    }
  }
  EXPECT_TRUE(saw_restart);
}

// --- EventKind wire pinning (ISSUE 8 satellite) ----------------------------

// Event.kind rides a uint8 slot in checkpoint/export ring headers, so the
// numeric value of every shipped kind is wire format. This pins them all:
// reordering the enum, inserting before an existing kind, or growing past
// the uint8 sentinel must fail here before it silently corrupts archived
// rings. The three serve alert kinds land strictly after kCollectorResync.
TEST(FlightRecorderWire, EventKindValuesArePinned) {
  const std::pair<EventKind, unsigned> pinned[] = {
      {EventKind::kExporterRestart, 0},
      {EventKind::kSequenceGap, 1},
      {EventKind::kSequenceReplay, 2},
      {EventKind::kTemplateParked, 3},
      {EventKind::kTemplateRecovered, 4},
      {EventKind::kTemplateEvicted, 5},
      {EventKind::kBackpressureStall, 6},
      {EventKind::kSlowWave, 7},
      {EventKind::kCacheEmergencyExpiry, 8},
      {EventKind::kCheckpointSave, 9},
      {EventKind::kCheckpointRestore, 10},
      {EventKind::kCheckpointRejected, 11},
      {EventKind::kDegradedEnter, 12},
      {EventKind::kDegradedExit, 13},
      {EventKind::kPipelineShutdown, 14},
      {EventKind::kSelfCheckFailed, 15},
      {EventKind::kScrape, 16},
      {EventKind::kDeltaMerged, 17},
      {EventKind::kDeltaRejected, 18},
      {EventKind::kCollectorResync, 19},
      {EventKind::kAlertNewDetection, 20},
      {EventKind::kAlertConfidenceDegraded, 21},
      {EventKind::kAlertLossSpike, 22},
  };
  for (const auto& [kind, value] : pinned) {
    EXPECT_EQ(static_cast<unsigned>(kind), value)
        << obs::event_name(kind);
  }
  // The sentinel trails the last shipped kind and stays within uint8.
  EXPECT_EQ(static_cast<unsigned>(EventKind::kEventKindCount),
            std::size(pinned));
  static_assert(static_cast<unsigned>(EventKind::kEventKindCount) <= 256U);
}

TEST(FlightRecorderWire, AlertKindsHaveStableNames) {
  EXPECT_STREQ(obs::event_name(EventKind::kAlertNewDetection),
               "alert_new_detection");
  EXPECT_STREQ(obs::event_name(EventKind::kAlertConfidenceDegraded),
               "alert_confidence_degraded");
  EXPECT_STREQ(obs::event_name(EventKind::kAlertLossSpike),
               "alert_loss_spike");
  EXPECT_STREQ(obs::event_name(EventKind::kEventKindCount), "unknown");
}

}  // namespace
}  // namespace haystack
