#include "simnet/scenario.hpp"

#include <istream>
#include <sstream>

namespace haystack::simnet {

namespace {

// Reads a possibly-quoted name token.
bool read_name(std::istringstream& fields, std::string& out) {
  fields >> std::ws;
  if (fields.peek() == '"') {
    fields.get();
    std::getline(fields, out, '"');
    return !out.empty();
  }
  return static_cast<bool>(fields >> out);
}

}  // namespace

PopulationConfig Scenario::apply(PopulationConfig base) const {
  if (seed) base.seed = *seed;
  if (lines) base.lines = *lines;
  if (rotation) base.daily_rotation_probability = *rotation;
  if (dual_stack) base.dual_stack_fraction = *dual_stack;
  return base;
}

WildIspConfig Scenario::apply(WildIspConfig base) const {
  // Derive an independent stream from the scenario seed.
  if (seed) base.seed = *seed ^ 0x5c;
  if (sampling) base.sampling = *sampling;
  if (base_active_prob) base.base_active_prob = *base_active_prob;
  return base;
}

std::optional<flow::ImpairmentConfig> Scenario::delta_impairment() const {
  if (!delta_drop && !delta_duplicate && !delta_reorder && !delta_truncate &&
      !delta_seed) {
    return std::nullopt;
  }
  flow::ImpairmentConfig config;
  config.seed = delta_seed.value_or(seed.value_or(1));
  config.drop = delta_drop.value_or(0.0);
  config.duplicate = delta_duplicate.value_or(0.0);
  config.reorder = delta_reorder.value_or(0.0);
  config.truncate = delta_truncate.value_or(0.0);
  return config;
}

std::optional<flow::ImpairmentConfig> Scenario::impairment() const {
  if (!impair_drop && !impair_duplicate && !impair_reorder &&
      !impair_truncate && !impair_seed) {
    return std::nullopt;
  }
  flow::ImpairmentConfig config;
  config.seed = impair_seed.value_or(seed.value_or(1));
  config.drop = impair_drop.value_or(0.0);
  config.duplicate = impair_duplicate.value_or(0.0);
  config.reorder = impair_reorder.value_or(0.0);
  config.truncate = impair_truncate.value_or(0.0);
  return config;
}

bool Scenario::apply_overrides(Catalog& catalog, std::string* error) const {
  for (const auto& [name, value] : penetration_overrides) {
    const Product* product = catalog.product_by_name(name);
    if (product == nullptr) {
      if (error != nullptr) *error = "unknown product: " + name;
      return false;
    }
    catalog.set_penetration(product->id, value);
  }
  for (const auto& [name, value] : wild_extra_overrides) {
    const DetectionUnit* unit = catalog.unit_by_name(name);
    if (unit == nullptr) {
      if (error != nullptr) *error = "unknown unit: " + name;
      return false;
    }
    catalog.set_wild_extra(unit->id, value);
  }
  return true;
}

std::optional<Scenario> parse_scenario(std::istream& is,
                                       std::string* error) {
  Scenario scenario;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    // Strip trailing comments.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields{line};
    std::string key;
    if (!(fields >> key)) continue;  // whitespace-only line

    auto syntax_error = [&](const char* what) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + what;
      }
      return std::nullopt;
    };

    if (key == "seed") {
      std::uint64_t v = 0;
      if (!(fields >> v)) return syntax_error("bad seed");
      scenario.seed = v;
    } else if (key == "lines") {
      std::uint32_t v = 0;
      if (!(fields >> v)) return syntax_error("bad lines");
      scenario.lines = v;
    } else if (key == "sampling") {
      std::uint32_t v = 0;
      if (!(fields >> v) || v == 0) return syntax_error("bad sampling");
      scenario.sampling = v;
    } else if (key == "rotation") {
      double v = 0;
      if (!(fields >> v) || v < 0 || v > 1) {
        return syntax_error("bad rotation");
      }
      scenario.rotation = v;
    } else if (key == "dual_stack") {
      double v = 0;
      if (!(fields >> v) || v < 0 || v > 1) {
        return syntax_error("bad dual_stack");
      }
      scenario.dual_stack = v;
    } else if (key == "base_active_prob") {
      double v = 0;
      if (!(fields >> v) || v < 0 || v > 1) {
        return syntax_error("bad base_active_prob");
      }
      scenario.base_active_prob = v;
    } else if (key == "impair_drop" || key == "impair_duplicate" ||
               key == "impair_reorder" || key == "impair_truncate") {
      double v = 0;
      if (!(fields >> v) || v < 0 || v > 1) {
        return syntax_error("bad impairment probability");
      }
      if (key == "impair_drop") scenario.impair_drop = v;
      else if (key == "impair_duplicate") scenario.impair_duplicate = v;
      else if (key == "impair_reorder") scenario.impair_reorder = v;
      else scenario.impair_truncate = v;
    } else if (key == "pipeline_shards" || key == "pipeline_queue" ||
               key == "pipeline_wave") {
      std::uint32_t v = 0;
      if (!(fields >> v) || v == 0) {
        return syntax_error("bad pipeline setting");
      }
      if (key == "pipeline_shards") scenario.pipeline_shards = v;
      else if (key == "pipeline_queue") scenario.pipeline_queue = v;
      else scenario.pipeline_wave = v;
    } else if (key == "impair_seed") {
      std::uint64_t v = 0;
      if (!(fields >> v)) return syntax_error("bad impair_seed");
      scenario.impair_seed = v;
    } else if (key == "delta_drop" || key == "delta_duplicate" ||
               key == "delta_reorder" || key == "delta_truncate" ||
               key == "ack_loss") {
      double v = 0;
      if (!(fields >> v) || v < 0 || v > 1) {
        return syntax_error("bad delta-channel probability");
      }
      if (key == "delta_drop") scenario.delta_drop = v;
      else if (key == "delta_duplicate") scenario.delta_duplicate = v;
      else if (key == "delta_reorder") scenario.delta_reorder = v;
      else if (key == "delta_truncate") scenario.delta_truncate = v;
      else scenario.ack_loss = v;
    } else if (key == "delta_seed") {
      std::uint64_t v = 0;
      if (!(fields >> v)) return syntax_error("bad delta_seed");
      scenario.delta_seed = v;
    } else if (key == "vantage_collectors") {
      std::uint32_t v = 0;
      if (!(fields >> v) || v == 0) {
        return syntax_error("bad vantage_collectors");
      }
      scenario.vantage_collectors = v;
    } else if (key == "vantage_kill_collector" ||
               key == "vantage_kill_hour" || key == "vantage_restart_hour") {
      std::uint32_t v = 0;
      if (!(fields >> v)) return syntax_error("bad vantage setting");
      if (key == "vantage_kill_collector") {
        scenario.vantage_kill_collector = v;
      } else if (key == "vantage_kill_hour") {
        scenario.vantage_kill_hour = v;
      } else {
        scenario.vantage_restart_hour = v;
      }
    } else if (key == "penetration" || key == "wild_extra") {
      std::string name;
      double v = 0;
      if (!read_name(fields, name) || !(fields >> v) || v < 0 || v > 1) {
        return syntax_error("bad override");
      }
      auto& list = key == "penetration" ? scenario.penetration_overrides
                                        : scenario.wild_extra_overrides;
      list.emplace_back(std::move(name), v);
    } else {
      return syntax_error("unknown key");
    }
  }
  return scenario;
}

}  // namespace haystack::simnet
