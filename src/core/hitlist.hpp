// Daily hitlist (paper Sec. 4.2.3 / Fig. 7): the dictionary mapping
// (service IP, port, day) to the IoT service and monitored domain it
// belongs to. This is what the detector consults per flow — the only
// per-flow state, so lookups must be O(1).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/service.hpp"
#include "net/ip_address.hpp"
#include "util/sim_clock.hpp"

namespace haystack::core {

/// What a hitlist lookup returns.
struct Hit {
  ServiceId service = 0;
  std::uint16_t domain_index = 0;  ///< index into the service's domains
};

/// Day-resolved (IP, port) -> (service, domain) dictionary.
class Hitlist {
 public:
  Hitlist() : days_(util::kStudyDays) {}

  /// Registers a mapping for one day. First writer wins; a conflicting
  /// second registration (same IP/port/day, different service) increments
  /// the collision counter instead of overwriting — dedicated
  /// infrastructure should never collide, so collisions indicate either a
  /// classification bug or genuinely shared hosting.
  void add(const net::IpAddress& ip, std::uint16_t port, util::DayBin day,
           Hit hit);

  /// O(1) lookup.
  [[nodiscard]] std::optional<Hit> lookup(const net::IpAddress& ip,
                                          std::uint16_t port,
                                          util::DayBin day) const;

  /// Entries registered for one day.
  [[nodiscard]] std::size_t day_size(util::DayBin day) const {
    return days_.at(day).size();
  }

  /// Total entries across all days.
  [[nodiscard]] std::size_t total_size() const noexcept;

  /// Cross-service collisions observed while building.
  [[nodiscard]] std::uint64_t collisions() const noexcept {
    return collisions_;
  }

  /// Visits every entry as (day, ip, port, hit), day-major. Order within a
  /// day is unspecified.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (util::DayBin day = 0; day < days_.size(); ++day) {
      for (const auto& [key, hit] : days_[day]) {
        fn(day, key.ip, key.port, hit);
      }
    }
  }

 private:
  struct Key {
    net::IpAddress ip;
    std::uint16_t port;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(
          util::hash_combine(k.ip.hash(), k.port));
    }
  };

  std::vector<std::unordered_map<Key, Hit, KeyHash>> days_;
  std::uint64_t collisions_ = 0;
};

}  // namespace haystack::core
