// Figure 5 reproduction — Home-VP vs ISP-VP visibility:
//   (a) unique service IPs per hour,
//   (b) unique domains per hour,
//   (c) cumulative service IPs per port class (Web/NTP/Other),
//   (d) unique IoT devices per hour.
#include <iostream>
#include <set>

#include "common.hpp"
#include "net/ports.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  telemetry::IspVantage isp{{.sampling = 1000, .wire_roundtrip = true}};

  util::print_banner(std::cout,
                     "Figure 5: Home-VP vs ISP-VP visibility per hour");
  util::TextTable table;
  table.header({"Hour", "Window", "Home IPs", "ISP IPs", "IP vis",
                "Home doms", "ISP doms", "Home devs", "ISP devs",
                "Dev vis"});

  // Cumulative per-port-class IP sets (Fig. 5c).
  std::map<net::PortClass, std::set<net::IpAddress>> cum_home;
  std::map<net::PortClass, std::set<net::IpAddress>> cum_isp;

  double ip_vis_sum = 0;
  double dev_vis_sum = 0;
  int hours = 0;

  for (util::HourBin h = 0; h < util::kStudyHours; ++h) {
    const bool active = util::in_active_window(h);
    const bool idle = util::in_idle_window(h);
    if (!active && !idle) continue;

    const auto home = world.gt().hour_flows(h);
    const auto sampled = isp.observe(home, h);

    std::set<net::IpAddress> home_ips, isp_ips;
    std::set<std::string> home_doms, isp_doms;
    std::set<simnet::InstanceId> home_devs, isp_devs;
    auto domain_of = [&](const simnet::LabeledFlow& f) -> std::string {
      if (f.unit) {
        return world.catalog()
            .domains_of(*f.unit)[f.domain_index]
            ->fqdn.str();
      }
      return world.catalog().generic_domains()[f.domain_index].str();
    };
    for (const auto& f : home) {
      home_ips.insert(f.flow.key.dst);
      home_doms.insert(domain_of(f));
      home_devs.insert(f.instance);
      cum_home[net::classify_port(f.flow.key.dst_port)].insert(
          f.flow.key.dst);
    }
    for (const auto& f : sampled) {
      isp_ips.insert(f.flow.key.dst);
      isp_doms.insert(domain_of(f));
      isp_devs.insert(f.instance);
      cum_isp[net::classify_port(f.flow.key.dst_port)].insert(
          f.flow.key.dst);
    }

    const double ip_vis = home_ips.empty()
                              ? 0.0
                              : double(isp_ips.size()) / home_ips.size();
    const double dev_vis = home_devs.empty()
                               ? 0.0
                               : double(isp_devs.size()) / home_devs.size();
    ip_vis_sum += ip_vis;
    dev_vis_sum += dev_vis;
    ++hours;

    if (h % 6 == 0) {
      table.row({util::hour_label(h), active ? "active" : "idle",
                 std::to_string(home_ips.size()),
                 std::to_string(isp_ips.size()), util::fmt_percent(ip_vis),
                 std::to_string(home_doms.size()),
                 std::to_string(isp_doms.size()),
                 std::to_string(home_devs.size()),
                 std::to_string(isp_devs.size()),
                 util::fmt_percent(dev_vis)});
    }
  }
  table.print(std::cout);

  std::cout << "\nAverages over experiment hours: IP visibility "
            << util::fmt_percent(ip_vis_sum / hours)
            << " (paper: ~16%), device visibility "
            << util::fmt_percent(dev_vis_sum / hours)
            << " (paper: 67% active / 64% idle)\n";

  util::print_banner(std::cout,
                     "Figure 5(c): cumulative service IPs per port class");
  util::TextTable cum;
  cum.header({"Port class", "Home-VP cumulative", "ISP-VP cumulative"});
  for (const auto cls :
       {net::PortClass::kWeb, net::PortClass::kNtp, net::PortClass::kOther}) {
    cum.row({std::string{net::port_class_name(cls)},
             std::to_string(cum_home[cls].size()),
             std::to_string(cum_isp[cls].size())});
  }
  cum.print(std::cout);
  std::cout << "\nNetFlow wire path: " << isp.wire_stats().records
            << " records decoded, " << isp.wire_stats().malformed_packets
            << " malformed packets\n";
  return 0;
}
