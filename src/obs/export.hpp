// Scrape exporters (ISSUE 5): render a MetricRegistry snapshot as
// Prometheus text exposition format or as a JSON snapshot, plus the
// matching parsers the round-trip tests (and any scrape tooling) use to
// validate that the output is machine-readable, not just printable.
//
// The parsers cover the full grammar these emitters produce — every
// escape, every histogram series — and reject anything malformed; they
// are not general-purpose Prometheus/JSON implementations.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace haystack::obs {

/// Prometheus text exposition format: # TYPE headers, one line per series,
/// histograms as cumulative <name>_bucket{le="..."} plus _sum/_count.
[[nodiscard]] std::string to_prometheus(const MetricRegistry& registry);

/// JSON snapshot: {"metrics":[{"name":...,"kind":...,"labels":{...},...}]}.
/// Counters/gauges carry "value"; histograms carry "count", "sum" and a
/// sparse "buckets" object of bucket-upper-bound → count.
[[nodiscard]] std::string to_json(const MetricRegistry& registry);

/// One parsed series (histograms come back as their constituent
/// _bucket/_sum/_count series, exactly as exposed).
struct ParsedSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Parses Prometheus text produced by to_prometheus(). nullopt (with
/// `error`) on any malformed line.
[[nodiscard]] std::optional<std::vector<ParsedSample>> parse_prometheus(
    std::string_view text, std::string* error = nullptr);

/// Parses a JSON snapshot produced by to_json(). Histograms are flattened
/// to the same _bucket/_sum/_count series as the Prometheus parser yields,
/// so round-trip tests can compare both exporters sample-for-sample.
[[nodiscard]] std::optional<std::vector<ParsedSample>> parse_json(
    std::string_view text, std::string* error = nullptr);

}  // namespace haystack::obs
