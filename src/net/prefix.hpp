// CIDR prefix value type (e.g. 192.0.2.0/24, 2001:db8::/32).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip_address.hpp"

namespace haystack::net {

/// Immutable CIDR prefix. The stored base address is always normalized
/// (host bits cleared), so equal prefixes compare equal regardless of how
/// they were written.
class Prefix {
 public:
  /// The default prefix is 0.0.0.0/0.
  constexpr Prefix() noexcept = default;

  /// Builds a prefix, clearing any host bits in `base`. `length` is clamped
  /// to the family's bit width.
  [[nodiscard]] static Prefix of(IpAddress base, unsigned length) noexcept;

  /// Parses "addr/len". Returns nullopt on syntax error or out-of-range
  /// length.
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr const IpAddress& base() const noexcept {
    return base_;
  }
  [[nodiscard]] constexpr unsigned length() const noexcept { return length_; }
  [[nodiscard]] constexpr Family family() const noexcept {
    return base_.family();
  }

  /// True when `addr` (same family) falls inside this prefix.
  [[nodiscard]] bool contains(const IpAddress& addr) const noexcept;

  /// True when `other` is fully covered by this prefix (same family,
  /// longer-or-equal length, matching leading bits).
  [[nodiscard]] bool covers(const Prefix& other) const noexcept;

  /// "base/len" textual form.
  [[nodiscard]] std::string to_string() const;

  /// Stable hash.
  [[nodiscard]] constexpr std::uint64_t hash() const noexcept {
    return util::hash_combine(base_.hash(), length_);
  }

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept =
      default;

 private:
  IpAddress base_{};
  unsigned length_ = 0;
};

/// Returns the /24 (IPv4) or /56 (IPv6) aggregate containing `addr`; the
/// paper's churn analysis (Fig. 13) aggregates subscriber identifiers at the
/// /24 level to smooth identifier rotation.
[[nodiscard]] Prefix aggregate_of(const IpAddress& addr) noexcept;

}  // namespace haystack::net

template <>
struct std::hash<haystack::net::Prefix> {
  std::size_t operator()(const haystack::net::Prefix& p) const noexcept {
    return static_cast<std::size_t>(p.hash());
  }
};
