// Multi-vantage fleet benchmark (ISSUE 7): aggregator merge throughput
// and delta-channel volume at 2/4/8 collectors.
//
// Two measurements per fleet size:
//
//   merge: the wild-ISP scenario is replayed once to pre-seal every
//   collector's per-hour delta datagrams, then a fresh aggregator folds
//   the whole stream while the clock runs — isolating offer()+seal from
//   simulation cost. Reported as rows merged per second (best of
//   BENCH_REPS runs, default 3).
//
//   channel: total delta bytes the fleet hands to the channel divided by
//   study hours — the per-aggregator-link bandwidth a deployment budgets
//   for (the paper's collectors ship compact evidence deltas, not flows).
//
// Writes a JSON summary (default BENCH_vantage.json, argv[1] overrides):
//
//   bench/vantage_bench [out.json]
//   HAYSTACK_LINES=40000 BENCH_REPS=5 bench/vantage_bench
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "pipeline/ingest.hpp"
#include "pipeline/scenario_runner.hpp"
#include "simnet/scenario.hpp"
#include "vantage/aggregator.hpp"
#include "vantage/collector.hpp"
#include "vantage/fleet.hpp"

namespace {

using namespace haystack;

constexpr unsigned kHours = 48;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct FleetResult {
  unsigned collectors = 0;
  std::uint64_t observations = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t rows_merged = 0;
  std::uint64_t delta_bytes = 0;
  double merge_seconds = 0.0;
  double merge_rows_per_sec = 0.0;
  double delta_bytes_per_hour = 0.0;
};

FleetResult run_fleet(const core::RuleSet& rules, simnet::WildIspSim& wild,
                      unsigned collectors, unsigned reps) {
  FleetResult out;
  out.collectors = collectors;

  // Phase 1: replay the study once, sealing every collector's per-hour
  // delta in arrival order. This is the exact byte stream a clean channel
  // would deliver.
  const core::DetectorConfig detector{};
  std::vector<std::unique_ptr<vantage::Collector>> fleet;
  for (unsigned i = 0; i < collectors; ++i) {
    fleet.push_back(std::make_unique<vantage::Collector>(
        rules.hitlist, rules,
        vantage::CollectorConfig{.id = i, .detector = detector}));
  }
  const pipeline::Normalizer normalize = pipeline::default_normalizer(1);
  std::vector<std::vector<std::uint8_t>> datagrams;
  for (util::HourBin h = 0; h < kHours; ++h) {
    wild.hour_observations(h, [&](const simnet::WildObs& obs) {
      if (auto normalized = normalize(obs.flow, h)) {
        ++out.observations;
        fleet[normalized->server.hash() % collectors]->ingest(*normalized);
      }
    });
    for (auto& collector : fleet) {
      datagrams.push_back(collector->seal_epoch(h));
    }
  }
  out.datagrams = datagrams.size();

  // Phase 2: fold the pre-sealed stream into a fresh aggregator, timed.
  for (unsigned rep = 0; rep < reps; ++rep) {
    vantage::Aggregator agg{rules.hitlist, rules,
                            vantage::AggregatorConfig{.detector = detector}};
    for (unsigned i = 0; i < collectors; ++i) agg.add_collector(i, 0);
    const auto start = std::chrono::steady_clock::now();
    for (const auto& datagram : datagrams) {
      const auto result = agg.offer(datagram);
      if (!result.accepted) {
        std::fprintf(stderr, "vantage_bench: rejected delta: %s\n",
                     result.detail.c_str());
        std::exit(1);
      }
    }
    const double elapsed = seconds_since(start);
    const auto counters = agg.counters();
    if (rep == 0 || elapsed < out.merge_seconds) {
      out.merge_seconds = elapsed;
      out.rows_merged = counters.rows_merged;
      out.delta_bytes = counters.delta_bytes;
    }
  }
  out.merge_rows_per_sec =
      out.merge_seconds > 0.0
          ? static_cast<double>(out.rows_merged) / out.merge_seconds
          : 0.0;
  out.delta_bytes_per_hour = static_cast<double>(out.delta_bytes) / kHours;
  return out;
}

// Delta-loss sweep: the merged evidence map is bit-for-bit invariant
// under channel loss (the differential suite proves it), so what loss
// actually costs is aggregator LATENCY — an epoch cannot seal until every
// collector's delta for it survives the channel, so dropped deltas push
// sealing into later hours via retransmission. Seal lag for epoch e is
// (process hour at which e merged) - e; epochs that only seal in the
// final drain are charged the end-of-study lag.
struct LossResult {
  double drop = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t delta_bytes = 0;
  double mean_seal_lag_hours = 0.0;
  double max_seal_lag_hours = 0.0;
  unsigned sealed_in_drain = 0;
};

LossResult run_loss(const core::RuleSet& rules, simnet::WildIspSim& wild,
                    double drop, std::uint64_t seed) {
  LossResult out;
  out.drop = drop;
  vantage::FleetConfig fcfg;
  fcfg.collectors = 4;
  fcfg.seed = seed;
  if (drop > 0.0) {
    fcfg.delta_impairment =
        flow::ImpairmentConfig{.seed = seed, .drop = drop};
  }
  vantage::Fleet fleet{rules.hitlist, rules, fcfg};
  const pipeline::Normalizer normalize = pipeline::default_normalizer(1);
  std::vector<core::Observation> hour_obs;
  std::vector<double> lags;
  util::HourBin sealed_through = 0;  // count of sealed epochs
  for (util::HourBin h = 0; h < kHours; ++h) {
    hour_obs.clear();
    wild.hour_observations(h, [&](const simnet::WildObs& obs) {
      if (auto normalized = normalize(obs.flow, h)) {
        hour_obs.push_back(*normalized);
      }
    });
    fleet.process_hour(h, hour_obs);
    const auto merged = fleet.aggregator().merged_through();
    const util::HourBin now = merged ? *merged + 1 : 0;
    for (util::HourBin e = sealed_through; e < now; ++e) {
      lags.push_back(static_cast<double>(h - e));
    }
    sealed_through = now;
  }
  if (!fleet.finish()) {
    std::fprintf(stderr, "vantage_bench: fleet failed to drain\n");
    std::exit(1);
  }
  out.sealed_in_drain = kHours - sealed_through;
  for (util::HourBin e = sealed_through; e < kHours; ++e) {
    lags.push_back(static_cast<double>(kHours - e));
  }
  for (const double lag : lags) {
    out.mean_seal_lag_hours += lag;
    out.max_seal_lag_hours = std::max(out.max_seal_lag_hours, lag);
  }
  out.mean_seal_lag_hours /= static_cast<double>(lags.size());
  out.retransmissions = fleet.total_retransmissions();
  out.delta_bytes = fleet.bytes_sent();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_vantage.json";
  const auto lines = bench::env_u64("HAYSTACK_LINES", 20000);
  const auto seed = bench::env_u64("HAYSTACK_SEED", 7);
  const auto reps =
      static_cast<unsigned>(bench::env_u64("BENCH_REPS", 3));

  std::ostringstream text;
  text << "lines " << lines << "\nseed " << seed << "\n";
  std::istringstream stream{text.str()};
  const auto scenario = simnet::parse_scenario(stream);
  if (!scenario) {
    std::fprintf(stderr, "vantage_bench: scenario parse failed\n");
    return 1;
  }

  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const core::RuleSet rules = simnet::build_ruleset(backend);
  simnet::Population population{catalog,
                                scenario->apply(simnet::PopulationConfig{})};
  simnet::DomainRateModel rates{catalog, 7};

  std::vector<FleetResult> results;
  for (const unsigned collectors : {2U, 4U, 8U}) {
    // A fresh sim per fleet size keeps the observation stream identical
    // across runs (WildIspSim generation is seed-deterministic).
    simnet::WildIspSim wild{backend, population, rates,
                            scenario->apply(simnet::WildIspConfig{})};
    const FleetResult r = run_fleet(rules, wild, collectors, reps);
    std::printf(
        "collectors=%u obs=%llu datagrams=%llu rows=%llu "
        "merge=%.1f Mrows/s channel=%.1f KiB/h\n",
        r.collectors, static_cast<unsigned long long>(r.observations),
        static_cast<unsigned long long>(r.datagrams),
        static_cast<unsigned long long>(r.rows_merged),
        r.merge_rows_per_sec / 1e6, r.delta_bytes_per_hour / 1024.0);
    results.push_back(r);
  }

  std::vector<LossResult> losses;
  for (const double drop : {0.0, 0.05, 0.15, 0.30, 0.50}) {
    simnet::WildIspSim wild{backend, population, rates,
                            scenario->apply(simnet::WildIspConfig{})};
    const LossResult r = run_loss(rules, wild, drop, seed);
    std::printf(
        "drop=%.2f retransmissions=%llu mean_lag=%.2fh max_lag=%.0fh "
        "drain_sealed=%u channel=%.1f KiB/h\n",
        r.drop, static_cast<unsigned long long>(r.retransmissions),
        r.mean_seal_lag_hours, r.max_seal_lag_hours, r.sealed_in_drain,
        static_cast<double>(r.delta_bytes) / kHours / 1024.0);
    losses.push_back(r);
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "vantage_bench: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"vantage_fleet\",\n"
               "  \"lines\": %llu,\n"
               "  \"hours\": %u,\n"
               "  \"seed\": %llu,\n"
               "  \"reps\": %u,\n"
               "  \"fleets\": [\n",
               static_cast<unsigned long long>(lines), kHours,
               static_cast<unsigned long long>(seed), reps);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FleetResult& r = results[i];
    std::fprintf(out,
                 "    {\n"
                 "      \"collectors\": %u,\n"
                 "      \"observations\": %llu,\n"
                 "      \"datagrams\": %llu,\n"
                 "      \"rows_merged\": %llu,\n"
                 "      \"delta_bytes\": %llu,\n"
                 "      \"merge_seconds\": %.6f,\n"
                 "      \"merge_rows_per_sec\": %.1f,\n"
                 "      \"delta_bytes_per_hour\": %.1f\n"
                 "    }%s\n",
                 r.collectors,
                 static_cast<unsigned long long>(r.observations),
                 static_cast<unsigned long long>(r.datagrams),
                 static_cast<unsigned long long>(r.rows_merged),
                 static_cast<unsigned long long>(r.delta_bytes),
                 r.merge_seconds, r.merge_rows_per_sec,
                 r.delta_bytes_per_hour,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"loss_sweep\": [\n");
  for (std::size_t i = 0; i < losses.size(); ++i) {
    const LossResult& r = losses[i];
    std::fprintf(out,
                 "    {\n"
                 "      \"delta_drop\": %.2f,\n"
                 "      \"retransmissions\": %llu,\n"
                 "      \"delta_bytes\": %llu,\n"
                 "      \"mean_seal_lag_hours\": %.3f,\n"
                 "      \"max_seal_lag_hours\": %.1f,\n"
                 "      \"epochs_sealed_in_drain\": %u\n"
                 "    }%s\n",
                 r.drop, static_cast<unsigned long long>(r.retransmissions),
                 static_cast<unsigned long long>(r.delta_bytes),
                 r.mean_seal_lag_hours, r.max_seal_lag_hours,
                 r.sealed_in_drain, i + 1 < losses.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
