// Deterministic random number generation for the simulation substrate.
//
// Everything in this repository that needs randomness derives it from a
// seeded Pcg32 stream. Streams are cheap value types; a stream can be
// derived from an (entity, time-bin) pair so that every simulated hour of
// every simulated subscriber line is reproducible in isolation, no matter
// in which order the simulation visits them.
#pragma once

#include <cstdint>
#include <limits>

namespace haystack::util {

/// SplitMix64 mixing step. Used both as a stand-alone generator for seeding
/// and as a finalizer to decorrelate low-entropy seeds (entity ids, hours).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// PCG32 (XSH-RR variant, O'Neill 2014): small, fast, statistically strong
/// 32-bit generator with a 64-bit state and a selectable stream.
///
/// Satisfies UniformRandomBitGenerator so it can be plugged into
/// <random> distributions, but we provide the handful of distributions the
/// simulator needs directly because the standard ones are not guaranteed to
/// be reproducible across library implementations.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Seeds the generator. `seq` selects one of 2^63 independent streams.
  constexpr explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                           std::uint64_t seq = 0xda3e39cb94b95bdbULL) noexcept
      : state_{0}, inc_{(seq << 1U) | 1U} {
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Advances the state and returns the next 32 random bits.
  constexpr result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). bound == 0 yields 0.
  /// Uses Lemire-style rejection to avoid modulo bias.
  constexpr std::uint32_t bounded(std::uint32_t bound) noexcept {
    if (bound <= 1) return 0;
    // Threshold below which values would be biased.
    const std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1) with 32 bits of resolution.
  constexpr double uniform() noexcept {
    return static_cast<double>(next()) * 0x1p-32;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  constexpr bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Poisson-distributed count with the given mean.
  ///
  /// Knuth's product method for small means; for large means a Gaussian
  /// approximation (via the central limit theorem on 12 uniforms) keeps the
  /// cost O(1). The simulator draws per-domain hourly packet counts from
  /// this, so it is on the hot path.
  std::uint64_t poisson(double mean) noexcept;

  /// Geometric number of failures before the first success, p in (0,1].
  std::uint64_t geometric(double p) noexcept;

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) noexcept;

  /// log-normal sample where the *underlying normal* has mean mu and
  /// standard deviation sigma. Used for heavy-tailed traffic volumes.
  double lognormal(double mu, double sigma) noexcept;

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// generator stays a regular value type).
  double normal() noexcept;

 private:
  constexpr result_type next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31U));
  }

  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Derives an independent generator for an (entity, bin) pair from a global
/// seed. The triple is mixed through SplitMix64 so neighbouring entities and
/// consecutive bins land in unrelated parts of the PCG state space.
[[nodiscard]] Pcg32 derive_rng(std::uint64_t global_seed, std::uint64_t entity,
                               std::uint64_t bin) noexcept;

}  // namespace haystack::util
