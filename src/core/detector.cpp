#include "core/detector.hpp"

#include <algorithm>

namespace haystack::core {

Detector::Detector(const Hitlist& hitlist, const RuleSet& rules,
                   const DetectorConfig& config)
    : hitlist_{hitlist}, rules_{rules}, config_{config} {
  ServiceId max_id = 0;
  for (const auto& r : rules.rules) max_id = std::max(max_id, r.service);
  rule_of_.assign(max_id + 1U, nullptr);
  for (const auto& r : rules.rules) rule_of_[r.service] = &r;
}

std::optional<Hit> Detector::observe(SubscriberKey subscriber,
                                     const net::IpAddress& server,
                                     std::uint16_t port,
                                     std::uint64_t packets,
                                     util::HourBin hour) {
  ++stats_.flows;
  if (instruments_.flows) instruments_.flows->add(1);
  const auto hit = hitlist_.lookup(server, port, util::day_of(hour));
  if (!hit) return std::nullopt;
  ++stats_.matched;
  if (instruments_.matched) instruments_.matched->add(1);

  const DetectionRule* rule =
      hit->service < rule_of_.size() ? rule_of_[hit->service] : nullptr;
  if (rule == nullptr) return hit;

  auto [it, inserted] = evidence_.try_emplace({subscriber, hit->service});
  Evidence& ev = it->second;
  if (inserted) {
    ev.first_seen = hour;
    if (instruments_.evidence_entries) {
      instruments_.evidence_entries->set(
          static_cast<std::int64_t>(evidence_.size()));
    }
  }
  ev.packets += packets;

  const std::uint16_t pos = hit->domain_index;
  if (pos < 128 && !ev.sees(pos)) {
    ev.mask[pos >> 6] |= std::uint64_t{1} << (pos & 63U);
    ++ev.distinct;
  }

  if (ev.satisfied_hour == Evidence::kNever) {
    const bool critical_ok =
        rule->critical_sufficient && rule->critical_monitored_index &&
        ev.sees(*rule->critical_monitored_index);
    if (critical_ok ||
        ev.distinct >= rule->required_domains(config_.threshold)) {
      ev.satisfied_hour = hour;
      if (instruments_.rules_satisfied) instruments_.rules_satisfied->add(1);
      if (instruments_.time_to_detection_hours) {
        instruments_.time_to_detection_hours->record(hour - ev.first_seen);
      }
    }
  }
  return hit;
}

std::optional<util::HourBin> Detector::detection_hour(
    SubscriberKey subscriber, ServiceId service) const {
  util::HourBin latest = 0;
  std::optional<ServiceId> current = service;
  while (current) {
    const DetectionRule* rule =
        *current < rule_of_.size() ? rule_of_[*current] : nullptr;
    if (rule == nullptr) return std::nullopt;
    const auto it = evidence_.find({subscriber, *current});
    if (it == evidence_.end() ||
        it->second.satisfied_hour == Evidence::kNever) {
      return std::nullopt;
    }
    latest = std::max(latest, it->second.satisfied_hour);
    current = rule->parent;
  }
  return latest;
}

void Detector::set_observed_loss(double fraction) noexcept {
  const bool was_degraded = degraded();
  observed_loss_ = std::clamp(fraction, 0.0, 1.0);
  if (instruments_.recorder != nullptr && degraded() != was_degraded) {
    const auto ppm = static_cast<std::uint64_t>(observed_loss_ * 1e6);
    instruments_.recorder->record(degraded() ? obs::EventKind::kDegradedEnter
                                             : obs::EventKind::kDegradedExit,
                                  instruments_.source, ppm);
  }
}

Verdict Detector::verdict(SubscriberKey subscriber, ServiceId service) const {
  if (const auto hour = detection_hour(subscriber, service)) {
    return {true, Confidence::kHigh, hour};
  }
  if (!degraded()) return {false, Confidence::kHigh, std::nullopt};

  // Degraded channel: an estimated fraction `observed_loss_` of the
  // export stream never reached us, so scale the evidence requirement
  // down proportionally (never below one domain) and re-evaluate the
  // hierarchy chain on current evidence. Whatever the answer, it is
  // low-confidence.
  std::optional<ServiceId> current = service;
  while (current) {
    const DetectionRule* rule =
        *current < rule_of_.size() ? rule_of_[*current] : nullptr;
    if (rule == nullptr) return {false, Confidence::kLow, std::nullopt};
    const auto it = evidence_.find({subscriber, *current});
    if (it == evidence_.end()) return {false, Confidence::kLow, std::nullopt};
    const Evidence& ev = it->second;
    const bool critical_ok =
        rule->critical_sufficient && rule->critical_monitored_index &&
        ev.sees(*rule->critical_monitored_index);
    const unsigned required = rule->required_domains(config_.threshold);
    const auto relaxed = std::max<unsigned>(
        1, static_cast<unsigned>(static_cast<double>(required) *
                                 (1.0 - observed_loss_)));
    if (!critical_ok && ev.distinct < relaxed) {
      return {false, Confidence::kLow, std::nullopt};
    }
    current = rule->parent;
  }
  return {true, Confidence::kLow, std::nullopt};
}

void Detector::restore_evidence(SubscriberKey subscriber, ServiceId service,
                                const Evidence& evidence) {
  evidence_[{subscriber, service}] = evidence;
  if (instruments_.evidence_entries) {
    instruments_.evidence_entries->set(
        static_cast<std::int64_t>(evidence_.size()));
  }
}

const Evidence* Detector::evidence(SubscriberKey subscriber,
                                   ServiceId service) const {
  const auto it = evidence_.find({subscriber, service});
  return it == evidence_.end() ? nullptr : &it->second;
}

void Detector::for_each_evidence(
    const std::function<void(SubscriberKey, ServiceId, const Evidence&)>& fn)
    const {
  for (const auto& [key, ev] : evidence_) {
    fn(key.subscriber, key.service, ev);
  }
}

void Detector::clear() {
  evidence_.clear();
  if (instruments_.evidence_entries) instruments_.evidence_entries->set(0);
}

}  // namespace haystack::core
