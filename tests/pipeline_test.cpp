// Tests for the deployment-grade pipelines: the multi-router border fleet
// (sampling provenance via options announcements) and the packet-level
// home capture / metering path (conservation through the flow cache).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/detector.hpp"
#include "simnet/backend.hpp"
#include "simnet/ground_truth.hpp"
#include "simnet/manual_analysis.hpp"
#include "telemetry/border_fleet.hpp"
#include "telemetry/home_capture.hpp"

namespace haystack {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new simnet::Catalog();
    backend_ = new simnet::Backend(*catalog_, simnet::BackendConfig{});
    gt_ = new simnet::GroundTruthSim(*backend_, simnet::GroundTruthConfig{});
    rules_ = new core::RuleSet(simnet::build_ruleset(*backend_));
  }
  static void TearDownTestSuite() {
    delete rules_;
    delete gt_;
    delete backend_;
    delete catalog_;
  }
  static simnet::Catalog* catalog_;
  static simnet::Backend* backend_;
  static simnet::GroundTruthSim* gt_;
  static core::RuleSet* rules_;
};

simnet::Catalog* PipelineTest::catalog_ = nullptr;
simnet::Backend* PipelineTest::backend_ = nullptr;
simnet::GroundTruthSim* PipelineTest::gt_ = nullptr;
core::RuleSet* PipelineTest::rules_ = nullptr;

TEST_F(PipelineTest, FleetLearnsSamplingFromAnnouncements) {
  telemetry::BorderFleetConfig fleet_config;
  fleet_config.routers = 4;
  fleet_config.sampling = 1000;
  telemetry::BorderRouterFleet fleet{fleet_config};
  const auto out = fleet.observe(gt_->hour_flows(24), 24);
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(fleet.sampling().known_sources(), 4u);
  for (unsigned r = 0; r < 4; ++r) {
    EXPECT_EQ(fleet.sampling().interval_of(100 + r), 1000u);
  }
  // Every decoded record carries the announced interval, not a per-record
  // field (the exporters zeroed it).
  for (const auto& lf : out) {
    EXPECT_EQ(lf.flow.sampling, 1000u);
  }
  EXPECT_EQ(fleet.collector_stats().malformed_packets, 0u);
}

TEST_F(PipelineTest, FleetRoutesByDestinationConsistently) {
  telemetry::BorderFleetConfig fleet_config;
  fleet_config.routers = 4;
  fleet_config.sampling = 1000;
  telemetry::BorderRouterFleet fleet{fleet_config};
  const auto flows = gt_->hour_flows(30);
  std::map<net::IpAddress, unsigned> seen;
  for (const auto& lf : flows) {
    const unsigned r = fleet.router_of(lf.flow.key.dst);
    const auto [it, inserted] = seen.emplace(lf.flow.key.dst, r);
    EXPECT_EQ(it->second, r) << "destination flapped between routers";
  }
  // All routers get work.
  std::set<unsigned> used;
  for (const auto& [ip, r] : seen) used.insert(r);
  EXPECT_EQ(used.size(), 4u);
}

TEST_F(PipelineTest, FleetDetectionMatchesSingleVantageStatistically) {
  // The fleet pipeline must not bias detection: over the active window the
  // per-service detection outcomes should agree with the single-exporter
  // vantage for the strong (fast-detected) services.
  telemetry::BorderFleetConfig fleet_config;
  fleet_config.routers = 4;
  fleet_config.sampling = 1000;
  telemetry::BorderRouterFleet fleet{fleet_config};
  core::Detector det{rules_->hitlist, *rules_, {.threshold = 0.4}};
  for (util::HourBin h = 0; h < 48; ++h) {
    for (const auto& lf : fleet.observe(gt_->hour_flows(h), h)) {
      det.observe(1, lf.flow.key.dst, lf.flow.key.dst_port,
                  lf.flow.packets, h);
    }
  }
  for (const char* name : {"Alexa Enabled", "Amazon Product", "Fire TV",
                           "Philips Dev.", "Yi Camera"}) {
    const auto* rule = rules_->rule_by_name(name);
    ASSERT_NE(rule, nullptr);
    EXPECT_TRUE(det.detected(1, rule->service)) << name;
  }
}

TEST_F(PipelineTest, HomeCaptureConservesEventsAndBytes) {
  telemetry::HomePacketPipeline pipeline{{}};
  const auto flows = gt_->hour_flows(26);
  auto result = pipeline.meter_hour(flows, 26);
  auto rest = pipeline.drain();
  result.flows.insert(result.flows.end(), rest.begin(), rest.end());

  std::uint64_t pkts_out = 0;
  std::uint64_t bytes_out = 0;
  for (const auto& rec : result.flows) {
    pkts_out += rec.packets;
    bytes_out += rec.bytes;
  }
  EXPECT_EQ(pkts_out, result.events_in);
  EXPECT_EQ(bytes_out, result.bytes_in);
  // Under the default cap almost all flows materialize 1 event per packet.
  EXPECT_GE(result.events_in, result.packets_in * 95 / 100);
}

TEST_F(PipelineTest, HomeCapturePreservesKeyUniverse) {
  telemetry::HomePacketPipeline pipeline{{}};
  const auto flows = gt_->hour_flows(27);
  auto result = pipeline.meter_hour(flows, 27);
  auto rest = pipeline.drain();
  result.flows.insert(result.flows.end(), rest.begin(), rest.end());

  std::set<flow::FlowKey> in_keys;
  std::set<flow::FlowKey> out_keys;
  for (const auto& lf : flows) in_keys.insert(lf.flow.key);
  for (const auto& rec : result.flows) out_keys.insert(rec.key);
  EXPECT_EQ(in_keys, out_keys);
}

TEST_F(PipelineTest, HomeCaptureCapBoundsMemoryNotTotals) {
  telemetry::HomeCaptureConfig config;
  config.max_packets_per_flow = 8;
  telemetry::HomePacketPipeline pipeline{config};
  const auto flows = gt_->hour_flows(28);
  auto result = pipeline.meter_hour(flows, 28);
  auto rest = pipeline.drain();
  result.flows.insert(result.flows.end(), rest.begin(), rest.end());
  std::uint64_t bytes_out = 0;
  for (const auto& rec : result.flows) bytes_out += rec.bytes;
  EXPECT_EQ(bytes_out, result.bytes_in);  // bytes exact even when capped
  EXPECT_LE(result.events_in, flows.size() * 8);
}

}  // namespace
}  // namespace haystack
