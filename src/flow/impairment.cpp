#include "flow/impairment.hpp"

namespace haystack::flow {

std::vector<std::vector<std::uint8_t>> ImpairedLink::transmit(
    std::vector<std::uint8_t> datagram) {
  ++stats_.datagrams_in;

  if (rng_.chance(config_.drop)) {
    ++stats_.dropped;
    return {};
  }

  if (rng_.chance(config_.reorder) && held_.size() < config_.reorder_hold) {
    // Hold this datagram back; it will be released behind datagrams that
    // entered the link after it.
    ++stats_.reordered;
    held_.push_back(std::move(datagram));
    return {};
  }

  if (rng_.chance(config_.truncate) && datagram.size() > 1) {
    // Cut somewhere strictly inside the datagram (a zero-length datagram
    // is indistinguishable from a drop and accounted as such above).
    datagram.resize(1 + rng_.bounded(
                            static_cast<std::uint32_t>(datagram.size() - 1)));
    ++stats_.truncated;
  }

  std::vector<std::vector<std::uint8_t>> out;
  if (rng_.chance(config_.duplicate)) {
    ++stats_.duplicated;
    out.push_back(datagram);
  }
  out.push_back(std::move(datagram));
  // Anything held for reordering now leaves the link *after* the current
  // datagram, which is what makes it reordered.
  while (!held_.empty()) {
    out.push_back(std::move(held_.front()));
    held_.pop_front();
  }
  stats_.delivered += out.size();
  return out;
}

std::vector<std::vector<std::uint8_t>> ImpairedLink::flush() {
  std::vector<std::vector<std::uint8_t>> out;
  while (!held_.empty()) {
    out.push_back(std::move(held_.front()));
    held_.pop_front();
  }
  stats_.delivered += out.size();
  return out;
}

}  // namespace haystack::flow
