#include "telemetry/counters.hpp"

#include "util/stats.hpp"

namespace haystack::telemetry {

void HeavyHitterView::add_reference(const net::IpAddress& ip,
                                    std::uint64_t bytes) {
  bytes_[ip] += bytes;
}

void HeavyHitterView::mark_visible(const net::IpAddress& ip) {
  visible_.insert(ip);
}

double HeavyHitterView::visible_fraction_of_top(double fraction) const {
  if (bytes_.empty()) return 0.0;
  std::vector<net::IpAddress> ips;
  std::vector<std::uint64_t> weights;
  ips.reserve(bytes_.size());
  weights.reserve(bytes_.size());
  for (const auto& [ip, b] : bytes_) {
    ips.push_back(ip);
    weights.push_back(b);
  }
  const auto top = util::top_fraction_indices(weights, fraction);
  std::size_t seen = 0;
  for (const std::size_t idx : top) {
    if (visible_.contains(ips[idx])) ++seen;
  }
  return static_cast<double>(seen) / static_cast<double>(top.size());
}

double HeavyHitterView::visible_fraction() const {
  if (bytes_.empty()) return 0.0;
  std::size_t seen = 0;
  for (const auto& [ip, b] : bytes_) {
    (void)b;
    if (visible_.contains(ip)) ++seen;
  }
  return static_cast<double>(seen) / static_cast<double>(bytes_.size());
}

void HeavyHitterView::clear() {
  bytes_.clear();
  visible_.clear();
}

}  // namespace haystack::telemetry
