#include "obs/flight_recorder.hpp"

#include <algorithm>

namespace haystack::obs {

const char* event_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kExporterRestart: return "exporter_restart";
    case EventKind::kSequenceGap: return "sequence_gap";
    case EventKind::kSequenceReplay: return "sequence_replay";
    case EventKind::kTemplateParked: return "template_parked";
    case EventKind::kTemplateRecovered: return "template_recovered";
    case EventKind::kTemplateEvicted: return "template_evicted";
    case EventKind::kBackpressureStall: return "backpressure_stall";
    case EventKind::kSlowWave: return "slow_wave";
    case EventKind::kCacheEmergencyExpiry: return "cache_emergency_expiry";
    case EventKind::kCheckpointSave: return "checkpoint_save";
    case EventKind::kCheckpointRestore: return "checkpoint_restore";
    case EventKind::kCheckpointRejected: return "checkpoint_rejected";
    case EventKind::kDegradedEnter: return "degraded_enter";
    case EventKind::kDegradedExit: return "degraded_exit";
    case EventKind::kPipelineShutdown: return "pipeline_shutdown";
    case EventKind::kSelfCheckFailed: return "self_check_failed";
    case EventKind::kScrape: return "scrape";
    case EventKind::kDeltaMerged: return "delta_merged";
    case EventKind::kDeltaRejected: return "delta_rejected";
    case EventKind::kCollectorResync: return "collector_resync";
    case EventKind::kAlertNewDetection: return "alert_new_detection";
    case EventKind::kAlertConfidenceDegraded:
      return "alert_confidence_degraded";
    case EventKind::kAlertLossSpike: return "alert_loss_spike";
    case EventKind::kEventKindCount: break;  // sentinel, never recorded
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_{std::max<std::size_t>(1, capacity)} {
  ring_.resize(capacity_);
}

void FlightRecorder::record(EventKind kind, std::uint32_t source,
                            std::uint64_t a, std::uint64_t b) {
  const util::HourBin hour = hour_.load(std::memory_order_relaxed);
  std::lock_guard lock{mu_};
  Event& slot = ring_[next_seq_ % capacity_];
  slot.seq = next_seq_++;
  slot.kind = kind;
  slot.hour = hour;
  slot.source = source;
  slot.a = a;
  slot.b = b;
}

std::vector<Event> FlightRecorder::dump() const {
  std::lock_guard lock{mu_};
  std::vector<Event> out;
  const std::uint64_t n = std::min<std::uint64_t>(next_seq_, capacity_);
  out.reserve(n);
  for (std::uint64_t seq = next_seq_ - n; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard lock{mu_};
  return next_seq_;
}

std::uint64_t FlightRecorder::overwritten() const {
  std::lock_guard lock{mu_};
  return next_seq_ > capacity_ ? next_seq_ - capacity_ : 0;
}

void FlightRecorder::clear() {
  std::lock_guard lock{mu_};
  next_seq_ = 0;
}

std::string FlightRecorder::to_json() const {
  const auto events = dump();
  std::string out = "[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"event\":\"";
    out += event_name(e.kind);
    out += "\",\"hour\":" + std::to_string(e.hour);
    out += ",\"source\":" + std::to_string(e.source);
    out += ",\"a\":" + std::to_string(e.a);
    out += ",\"b\":" + std::to_string(e.b);
    out += '}';
  }
  out += ']';
  return out;
}

}  // namespace haystack::obs
