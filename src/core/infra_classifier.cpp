#include "core/infra_classifier.hpp"

#include <algorithm>

namespace haystack::core {

bool InfraClassifier::ip_exclusive(const net::IpAddress& ip,
                                   const dns::Fqdn& domain,
                                   const dns::Resolution& resolution,
                                   util::DayBin day) const {
  const dns::Fqdn own_sld = domain.registrable();
  const auto on_ip = pdns_.domains_on(ip, {day, day});
  for (const auto& other : on_ip) {
    // Allowed: the queried domain's own registrable domain...
    if (other.registrable() == own_sld) continue;
    // ...or a name on the resolution chain (the EC2-VM CNAME case).
    if (std::binary_search(resolution.chain.begin(), resolution.chain.end(),
                           other)) {
      continue;
    }
    return false;
  }
  return true;
}

InfraResult InfraClassifier::classify(const ServiceDomain& domain) const {
  InfraResult result;
  const dns::DayWindow window{first_day_, last_day_};

  if (!pdns_.has_records(domain.fqdn, window)) {
    // Passive DNS never saw this domain: certificate-scan fallback
    // (requires HTTPS and a ground-truth banner checksum).
    if (!domain.https || !domain.banner) {
      result.cls = InfraClass::kNoData;
      return result;
    }
    bool any = false;
    result.daily_ips.resize(last_day_ - first_day_ + 1);
    for (util::DayBin day = first_day_; day <= last_day_; ++day) {
      auto ips = scans_.ips_serving_domain(domain.fqdn, *domain.banner,
                                           {day, day});
      any = any || !ips.empty();
      result.daily_ips[day - first_day_] = std::move(ips);
    }
    if (!any) {
      result.cls = InfraClass::kNoData;
      result.daily_ips.clear();
      return result;
    }
    result.cls = InfraClass::kViaCertScan;
    return result;
  }

  // Passive-DNS path: all IPs on all days must be exclusive.
  result.daily_ips.resize(last_day_ - first_day_ + 1);
  for (util::DayBin day = first_day_; day <= last_day_; ++day) {
    const auto resolution = pdns_.resolve(domain.fqdn, {day, day});
    for (const auto& ip : resolution.ips) {
      if (!ip_exclusive(ip, domain.fqdn, resolution, day)) {
        result.cls = InfraClass::kShared;
        result.daily_ips.clear();
        return result;
      }
    }
    result.daily_ips[day - first_day_] = resolution.ips;
  }
  result.cls = InfraClass::kDedicated;
  return result;
}

}  // namespace haystack::core
