#include "flow/sampler.hpp"

#include <algorithm>
#include <cmath>

namespace haystack::flow {

std::uint64_t binomial(util::Pcg32& rng, std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double mean = static_cast<double>(n) * p;
  if (n <= 64) {
    // Exact.
    std::uint64_t k = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (rng.chance(p)) ++k;
    }
    return k;
  }
  if (mean < 30.0) {
    // Poisson approximation (p small, n large); clamp to n.
    return std::min(n, rng.poisson(mean));
  }
  // Gaussian approximation with continuity correction.
  const double sd = std::sqrt(mean * (1.0 - p));
  const double sample = mean + sd * rng.normal();
  if (sample <= 0.0) return 0;
  const auto k = static_cast<std::uint64_t>(std::llround(sample));
  return std::min(n, k);
}

std::optional<FlowRecord> thin_flow(const FlowRecord& full,
                                    std::uint32_t interval,
                                    util::Pcg32& rng) noexcept {
  if (interval <= 1) {
    FlowRecord rec = full;
    rec.sampling = 1;
    return rec;
  }
  const double p = 1.0 / static_cast<double>(interval);
  const std::uint64_t sampled = binomial(rng, full.packets, p);
  if (sampled == 0) return std::nullopt;

  FlowRecord rec = full;
  rec.packets = sampled;
  rec.bytes = full.packets == 0
                  ? 0
                  : static_cast<std::uint64_t>(
                        static_cast<double>(full.bytes) *
                        (static_cast<double>(sampled) /
                         static_cast<double>(full.packets)));
  rec.sampling = interval;
  return rec;
}

}  // namespace haystack::flow
