#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace haystack::util {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  // Compute column widths across header and all rows.
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i];
      if (i + 1 < cells.size()) {
        os << std::string(widths[i] - cells[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const bool needs_quote =
          cells[i].find_first_of(",\"\n") != std::string::npos;
      if (needs_quote) {
        os << '"';
        for (const char c : cells[i]) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << cells[i];
      }
      if (i + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_count(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  const std::size_t lead = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += raw[i];
  }
  return out;
}

std::string fmt_percent(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
  return buf;
}

void print_banner(std::ostream& os, std::string_view title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace haystack::util
