#include "core/hitlist.hpp"

namespace haystack::core {

void Hitlist::add(const net::IpAddress& ip, std::uint16_t port,
                  util::DayBin day, Hit hit) {
  auto& map = days_.at(day);
  const auto [it, inserted] = map.try_emplace({ip, port}, hit);
  if (!inserted && it->second.service != hit.service) ++collisions_;
}

std::optional<Hit> Hitlist::lookup(const net::IpAddress& ip,
                                   std::uint16_t port,
                                   util::DayBin day) const {
  if (day >= days_.size()) return std::nullopt;
  const auto& map = days_[day];
  const auto it = map.find({ip, port});
  if (it == map.end()) return std::nullopt;
  return it->second;
}

std::size_t Hitlist::total_size() const noexcept {
  std::size_t n = 0;
  for (const auto& m : days_) n += m.size();
  return n;
}

}  // namespace haystack::core
