#include "pipeline/ingest.hpp"

#include <utility>

#include "telemetry/anonymize.hpp"

namespace haystack::pipeline {

Normalizer default_normalizer(std::uint64_t anonymization_key) {
  return [anonymization_key](const flow::FlowRecord& rec, util::HourBin hour)
             -> std::optional<core::Observation> {
    return core::Observation{
        .subscriber = telemetry::anonymize(rec.key.src, anonymization_key),
        .server = rec.key.dst,
        .port = rec.key.dst_port,
        .packets = rec.packets,
        .hour = hour,
    };
  };
}

namespace {

// Export version word (first two bytes, network order): 5 = NetFlow v5,
// 9 = NetFlow v9, 10 = IPFIX.
[[nodiscard]] std::uint16_t sniff_version(
    const std::vector<std::uint8_t>& bytes) noexcept {
  if (bytes.size() < 2) return 0;
  return static_cast<std::uint16_t>((bytes[0] << 8) | bytes[1]);
}

}  // namespace

IngestPipeline::IngestPipeline(const core::Hitlist& hitlist,
                               const core::RuleSet& rules,
                               const IngestConfig& config,
                               Normalizer normalizer)
    : config_{config},
      normalizer_{normalizer ? std::move(normalizer)
                             : default_normalizer(config.anonymization_key)},
      detector_{hitlist, rules, config.detector, std::max(1u, config.shards),
                config.queue_capacity},
      nf9_{flow::nf9::CollectorConfig{.dedup_window = config.dedup_window}},
      ipfix_{
          flow::ipfix::CollectorConfig{.dedup_window = config.dedup_window}},
      cache_{config.metering} {
  const ShardPoolConfig stage{.shards = 1,
                              .queue_capacity = config_.queue_capacity,
                              .max_wave = config_.max_wave};
  normalize_ = std::make_unique<ShardPool<FlowBatch>>(
      stage, [this](unsigned, std::vector<FlowBatch>& wave) {
        normalize_wave(wave);
      });
  decode_ = std::make_unique<ShardPool<Datagram>>(
      stage,
      [this](unsigned, std::vector<Datagram>& wave) { decode_wave(wave); });
  metering_ = std::make_unique<ShardPool<MeterItem>>(
      stage, [this](unsigned, std::vector<MeterItem>& wave) {
        meter_wave(wave);
      });
}

IngestPipeline::~IngestPipeline() { shutdown(); }

bool IngestPipeline::push_datagram(std::vector<std::uint8_t> bytes,
                                   util::HourBin hour) {
  if (closed_.load(std::memory_order_acquire)) return false;
  if (!decode_->submit(0, Datagram{hour, std::move(bytes)})) return false;
  datagrams_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool IngestPipeline::push_packet(const flow::PacketEvent& packet,
                                 util::HourBin hour) {
  if (closed_.load(std::memory_order_acquire)) return false;
  if (!metering_->submit(0, MeterItem{hour, packet})) return false;
  packets_metered_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool IngestPipeline::push_flows(std::vector<flow::FlowRecord> flows,
                                util::HourBin hour) {
  if (closed_.load(std::memory_order_acquire)) return false;
  const std::uint64_t n = flows.size();
  if (!normalize_->submit(0, FlowBatch{hour, std::move(flows)})) return false;
  flows_in_.fetch_add(n, std::memory_order_relaxed);
  return true;
}

bool IngestPipeline::push_observations(std::vector<core::Observation> chunk) {
  if (closed_.load(std::memory_order_acquire)) return false;
  observations_.fetch_add(chunk.size(), std::memory_order_relaxed);
  detector_.enqueue_batch(chunk);
  return true;
}

void IngestPipeline::drain() {
  // Topological order: each stage's drain happens-before the next stage's
  // submitted-counter snapshot, so anything a stage forwarded downstream
  // is covered by the downstream barrier.
  if (metering_ && metering_->running()) metering_->drain();
  if (decode_ && decode_->running()) decode_->drain();
  if (normalize_ && normalize_->running()) normalize_->drain();
  detector_.drain();
}

void IngestPipeline::shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  closed_.store(true, std::memory_order_release);
  // Stop in dependency order: each stage's consumers downstream are still
  // alive while it drains, so nothing deadlocks on a full queue.
  metering_->stop();
  // The metering worker is gone; flush the cache remnants on this thread.
  std::vector<flow::FlowRecord> rest;
  cache_.flush_all(rest);
  cache_depth_.store(cache_.active_flows(), std::memory_order_relaxed);
  emit_metered(std::move(rest),
               last_meter_hour_.load(std::memory_order_relaxed));
  decode_->stop();
  normalize_->stop();
  detector_.drain();  // detect stage stays alive for reads
}

void IngestPipeline::meter_wave(std::vector<MeterItem>& wave) {
  std::vector<flow::FlowRecord> expired;
  for (const MeterItem& item : wave) {
    last_meter_hour_.store(item.hour, std::memory_order_relaxed);
    expired.clear();
    cache_.add(item.packet, expired);
    const std::size_t depth = cache_.active_flows();
    cache_depth_.store(depth, std::memory_order_relaxed);
    if (depth > cache_high_water_.load(std::memory_order_relaxed)) {
      cache_high_water_.store(depth, std::memory_order_relaxed);
    }
    emit_metered(std::move(expired), item.hour);
  }
}

void IngestPipeline::emit_metered(std::vector<flow::FlowRecord> records,
                                  util::HourBin hour) {
  if (records.empty()) return;
  metered_flows_.fetch_add(records.size(), std::memory_order_relaxed);
  std::uint64_t packets = 0;
  for (const auto& rec : records) packets += rec.packets;
  metered_packets_out_.fetch_add(packets, std::memory_order_relaxed);
  normalize_->submit(0, FlowBatch{hour, std::move(records)});
}

void IngestPipeline::decode_wave(std::vector<Datagram>& wave) {
  std::vector<flow::FlowRecord> records;
  for (const Datagram& dgram : wave) {
    records.clear();
    bool ok = false;
    switch (sniff_version(dgram.bytes)) {
      case 5:
        ok = nf5_.ingest(dgram.bytes, records);
        break;
      case 9:
        ok = nf9_.ingest(dgram.bytes, records);
        break;
      case 10:
        ok = ipfix_.ingest(dgram.bytes, records);
        break;
      default:
        unknown_version_.fetch_add(1, std::memory_order_relaxed);
        continue;
    }
    if (!ok) malformed_.fetch_add(1, std::memory_order_relaxed);
    if (records.empty()) continue;
    flows_decoded_.fetch_add(records.size(), std::memory_order_relaxed);
    normalize_->submit(0, FlowBatch{dgram.hour, std::move(records)});
  }
}

void IngestPipeline::normalize_wave(std::vector<FlowBatch>& wave) {
  std::vector<core::Observation> chunk;
  for (const FlowBatch& batch : wave) {
    chunk.clear();
    chunk.reserve(batch.flows.size());
    for (const flow::FlowRecord& rec : batch.flows) {
      if (auto obs = normalizer_(rec, batch.hour)) {
        chunk.push_back(*obs);
      } else {
        dropped_direction_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (chunk.empty()) continue;
    observations_.fetch_add(chunk.size(), std::memory_order_relaxed);
    detector_.enqueue_batch(chunk);
  }
}

IngestPipeline::Stats IngestPipeline::stats() const {
  Stats out;
  out.metering = metering_->stats_total();
  out.decode = decode_->stats_total();
  out.normalize = normalize_->stats_total();
  out.detect_shards.reserve(detector_.shard_count());
  for (unsigned s = 0; s < detector_.shard_count(); ++s) {
    out.detect_shards.push_back(detector_.shard_queue_stats(s));
    out.detect += out.detect_shards.back();
  }
  out.datagrams = datagrams_.load(std::memory_order_relaxed);
  out.malformed_datagrams = malformed_.load(std::memory_order_relaxed);
  out.unknown_version = unknown_version_.load(std::memory_order_relaxed);
  out.packets_metered = packets_metered_.load(std::memory_order_relaxed);
  out.metered_flows = metered_flows_.load(std::memory_order_relaxed);
  out.metered_packets_out =
      metered_packets_out_.load(std::memory_order_relaxed);
  out.flows_decoded = flows_decoded_.load(std::memory_order_relaxed);
  out.flows_in = flows_in_.load(std::memory_order_relaxed);
  out.observations = observations_.load(std::memory_order_relaxed);
  out.dropped_direction = dropped_direction_.load(std::memory_order_relaxed);
  out.metering_depth = cache_depth_.load(std::memory_order_relaxed);
  out.metering_high_water =
      cache_high_water_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace haystack::pipeline
