#include "dns/pdns_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace haystack::dns {

void export_pdns(const PassiveDnsDb& db, std::ostream& os) {
  os << "# haystack pdns v1\n";
  db.for_each_record([&os](const PdnsRecord& record) {
    switch (record.type) {
      case RrType::kA:
        os << "a\t" << record.name.str() << '\t' << record.ip.to_string();
        break;
      case RrType::kAaaa:
        os << "aaaa\t" << record.name.str() << '\t'
           << record.ip.to_string();
        break;
      case RrType::kCname:
        os << "cname\t" << record.name.str() << '\t' << record.target.str();
        break;
    }
    os << '\t' << record.first_day << '\t' << record.last_day << '\n';
  });
}

std::optional<PassiveDnsDb> import_pdns(std::istream& is,
                                        std::string* error) {
  PassiveDnsDb db;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields{line};
    std::string kind, name, value;
    util::DayBin first = 0;
    util::DayBin last = 0;
    if (!(fields >> kind >> name >> value >> first >> last)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": bad record";
      }
      return std::nullopt;
    }
    const Fqdn fqdn{name};
    if (!fqdn.valid() || last < first) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": bad name or range";
      }
      return std::nullopt;
    }
    if (kind == "a" || kind == "aaaa") {
      const auto ip = net::IpAddress::parse(value);
      if (!ip) {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_no) + ": bad address";
        }
        return std::nullopt;
      }
      db.add_a(fqdn, *ip, first, last);
    } else if (kind == "cname") {
      const Fqdn target{value};
      if (!target.valid()) {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_no) + ": bad cname target";
        }
        return std::nullopt;
      }
      db.add_cname(fqdn, target, first, last);
    } else {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": unknown kind";
      }
      return std::nullopt;
    }
  }
  return db;
}

}  // namespace haystack::dns
