// Unit tests for the net substrate: address parsing/formatting, prefixes,
// longest-prefix-match trie, port taxonomy, and the AS registry.
#include <gtest/gtest.h>

#include "net/asn.hpp"
#include "net/ip_address.hpp"
#include "net/ports.hpp"
#include "net/prefix.hpp"
#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

namespace haystack::net {
namespace {

TEST(IpAddressTest, V4ParseFormatRoundtrip) {
  for (const char* text : {"0.0.0.0", "127.0.0.1", "255.255.255.255",
                           "192.0.2.1", "10.11.12.13"}) {
    const auto addr = IpAddress::parse(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(addr->to_string(), text);
    EXPECT_TRUE(addr->is_v4());
  }
}

TEST(IpAddressTest, V4RejectsMalformed) {
  for (const char* text :
       {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.-4", "a.b.c.d",
        "1..2.3", "1.2.3.4 ", "01.2.3.4567"}) {
    EXPECT_FALSE(IpAddress::parse(text).has_value()) << text;
  }
}

TEST(IpAddressTest, V6ParseFormatRoundtrip) {
  // Canonical RFC 5952 forms survive a round trip.
  for (const char* text :
       {"::", "::1", "2001:db8::1", "fe80::1:2:3", "2001:db8:1:2:3:4:5:6",
        "ff02::2"}) {
    const auto addr = IpAddress::parse(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(addr->to_string(), text);
    EXPECT_TRUE(addr->is_v6());
  }
}

TEST(IpAddressTest, V6CompressionIsCanonical) {
  EXPECT_EQ(IpAddress::parse("2001:0db8:0:0:0:0:0:1")->to_string(),
            "2001:db8::1");
  EXPECT_EQ(IpAddress::parse("0:0:0:0:0:0:0:0")->to_string(), "::");
}

TEST(IpAddressTest, V6RejectsMalformed) {
  for (const char* text :
       {":", ":::", "1::2::3", "2001:db8", "12345::", "g::1",
        "1:2:3:4:5:6:7:8:9"}) {
    EXPECT_FALSE(IpAddress::parse(text).has_value()) << text;
  }
}

TEST(IpAddressTest, OrderingAndHashing) {
  const auto a = IpAddress::v4(1);
  const auto b = IpAddress::v4(2);
  EXPECT_LT(a, b);
  EXPECT_NE(a.hash(), b.hash());
  // Family separates equal numeric values.
  EXPECT_NE(IpAddress::v4(5), IpAddress::v6(0, 5));
}

TEST(IpAddressTest, BitAccess) {
  const auto addr = *IpAddress::parse("128.0.0.1");
  EXPECT_TRUE(addr.bit(0));
  EXPECT_FALSE(addr.bit(1));
  EXPECT_TRUE(addr.bit(31));
  const auto v6 = IpAddress::v6(0x8000000000000000ULL, 1);
  EXPECT_TRUE(v6.bit(0));
  EXPECT_TRUE(v6.bit(127));
  EXPECT_FALSE(v6.bit(64));
}

TEST(IpAddressTest, BytesLayout) {
  const auto addr = *IpAddress::parse("1.2.3.4");
  const auto bytes = addr.bytes();
  EXPECT_EQ(bytes[12], 1);
  EXPECT_EQ(bytes[13], 2);
  EXPECT_EQ(bytes[14], 3);
  EXPECT_EQ(bytes[15], 4);
}

TEST(PrefixTest, NormalizesHostBits) {
  const auto p = Prefix::of(*IpAddress::parse("192.0.2.99"), 24);
  EXPECT_EQ(p.to_string(), "192.0.2.0/24");
  EXPECT_EQ(p, *Prefix::parse("192.0.2.0/24"));
}

TEST(PrefixTest, Contains) {
  const auto p = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(*IpAddress::parse("10.255.0.1")));
  EXPECT_FALSE(p.contains(*IpAddress::parse("11.0.0.1")));
  EXPECT_FALSE(p.contains(IpAddress::v6(0, 0)));  // family mismatch
  const auto all = *Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(*IpAddress::parse("200.1.2.3")));
}

TEST(PrefixTest, CoversAndV6) {
  EXPECT_TRUE(Prefix::parse("10.0.0.0/8")->covers(*Prefix::parse("10.1.0.0/16")));
  EXPECT_FALSE(
      Prefix::parse("10.1.0.0/16")->covers(*Prefix::parse("10.0.0.0/8")));
  const auto p6 = *Prefix::parse("2001:db8::/32");
  EXPECT_TRUE(p6.contains(*IpAddress::parse("2001:db8:ffff::1")));
  EXPECT_FALSE(p6.contains(*IpAddress::parse("2001:db9::1")));
  // Masking across the 64-bit boundary.
  const auto p96 = *Prefix::parse("2001:db8::1:0:0/96");
  EXPECT_TRUE(p96.contains(*IpAddress::parse("2001:db8::1:0:5")));
  EXPECT_FALSE(p96.contains(*IpAddress::parse("2001:db8::2:0:5")));
}

TEST(PrefixTest, ParseRejectsBadInput) {
  for (const char* text : {"10.0.0.0", "10.0.0.0/33", "10.0.0.0/x",
                           "2001:db8::/129", "/24", "10.0.0.0/"}) {
    EXPECT_FALSE(Prefix::parse(text).has_value()) << text;
  }
}

TEST(AggregateTest, V4Is24V6Is56) {
  EXPECT_EQ(aggregate_of(*IpAddress::parse("198.51.100.77")).to_string(),
            "198.51.100.0/24");
  EXPECT_EQ(aggregate_of(*IpAddress::parse("2001:db8:1:230::1")).length(),
            56u);
}

TEST(PrefixTrieTest, LongestPrefixMatchWins) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 2);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 3);
  EXPECT_EQ(trie.lookup(*IpAddress::parse("10.1.2.3")), 3);
  EXPECT_EQ(trie.lookup(*IpAddress::parse("10.1.9.9")), 2);
  EXPECT_EQ(trie.lookup(*IpAddress::parse("10.9.9.9")), 1);
  EXPECT_EQ(trie.lookup(*IpAddress::parse("11.0.0.1")), std::nullopt);
  EXPECT_EQ(trie.size(), 3u);
}

TEST(PrefixTrieTest, ExactMatchAndOverwrite) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 7);
  EXPECT_EQ(trie.exact(*Prefix::parse("10.0.0.0/8")), 7);
  EXPECT_EQ(trie.exact(*Prefix::parse("10.0.0.0/9")), std::nullopt);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrieTest, FamiliesAreSegregated) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("0.0.0.0/0"), 4);
  trie.insert(*Prefix::parse("::/0"), 6);
  EXPECT_EQ(trie.lookup(*IpAddress::parse("8.8.8.8")), 4);
  EXPECT_EQ(trie.lookup(*IpAddress::parse("2001:db8::1")), 6);
}

TEST(PrefixTrieTest, ForEachVisitsEverything) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("192.168.0.0/16"), 2);
  trie.insert(*Prefix::parse("2001:db8::/32"), 3);
  int sum = 0;
  std::size_t count = 0;
  trie.for_each([&](const Prefix& p, int v) {
    sum += v;
    ++count;
    EXPECT_EQ(trie.exact(p), v);
  });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(sum, 6);
}

TEST(PrefixTrieTest, RandomizedAgainstLinearScan) {
  // Property: trie lookup == brute-force longest-prefix scan.
  PrefixTrie<std::uint32_t> trie;
  std::vector<Prefix> prefixes;
  util::Pcg32 rng{2024, 9};
  for (int i = 0; i < 300; ++i) {
    const auto base = IpAddress::v4(rng());
    const unsigned length = rng.bounded(25) + 8;
    const auto prefix = Prefix::of(base, length);
    trie.insert(prefix, static_cast<std::uint32_t>(prefixes.size()));
    prefixes.push_back(prefix);
  }
  for (int i = 0; i < 2000; ++i) {
    const auto addr = IpAddress::v4(rng());
    bool found = false;
    unsigned best_len = 0;
    for (const Prefix& p : prefixes) {
      if (p.contains(addr)) {
        found = true;
        best_len = std::max(best_len, p.length());
      }
    }
    const auto result = trie.lookup(addr);
    ASSERT_EQ(result.has_value(), found);
    if (result) {
      // The matched value indexes some prefix of the winning length
      // (duplicate prefixes overwrite, so compare lengths, not indices).
      EXPECT_EQ(prefixes[*result].length(), best_len);
    }
  }
}

TEST(PortsTest, Classification) {
  EXPECT_EQ(classify_port(443), PortClass::kWeb);
  EXPECT_EQ(classify_port(80), PortClass::kWeb);
  EXPECT_EQ(classify_port(8080), PortClass::kWeb);
  EXPECT_EQ(classify_port(123), PortClass::kNtp);
  EXPECT_EQ(classify_port(53), PortClass::kDns);
  EXPECT_EQ(classify_port(8883), PortClass::kOther);
  EXPECT_EQ(port_class_name(PortClass::kWeb), "Web");
}

TEST(PortsTest, ServerHeuristic) {
  EXPECT_TRUE(is_well_known_server_port(443));
  EXPECT_TRUE(is_well_known_server_port(8883));
  EXPECT_FALSE(is_well_known_server_port(34567));
}

TEST(AsnRegistryTest, OriginAndRoles) {
  AsnRegistry registry;
  registry.add_as({64500, "Eyeball", AsRole::kEyeball});
  registry.add_as({64510, "Cloud", AsRole::kCloud});
  registry.announce(*Prefix::parse("100.64.0.0/10"), 64500);
  registry.announce(*Prefix::parse("52.0.0.0/11"), 64510);
  registry.announce(*Prefix::parse("52.16.0.0/16"), 64510);

  EXPECT_EQ(registry.origin(*IpAddress::parse("100.64.1.2")), 64500u);
  EXPECT_EQ(registry.origin(*IpAddress::parse("52.16.3.4")), 64510u);
  EXPECT_EQ(registry.origin(*IpAddress::parse("9.9.9.9")), std::nullopt);
  EXPECT_EQ(registry.role_of(*IpAddress::parse("100.64.1.2")),
            AsRole::kEyeball);
  EXPECT_TRUE(registry.is_cloud_or_cdn(*IpAddress::parse("52.1.1.1")));
  EXPECT_FALSE(registry.is_cloud_or_cdn(*IpAddress::parse("100.64.1.1")));
  ASSERT_NE(registry.info(64500), nullptr);
  EXPECT_EQ(registry.info(64500)->name, "Eyeball");
  EXPECT_EQ(registry.info(1), nullptr);
}

TEST(AsnRegistryTest, ReannounceUpdatesMetadata) {
  AsnRegistry registry;
  registry.add_as({64500, "Old", AsRole::kTransit});
  registry.add_as({64500, "New", AsRole::kCdn});
  EXPECT_EQ(registry.all().size(), 1u);
  EXPECT_EQ(registry.info(64500)->name, "New");
  EXPECT_EQ(registry.info(64500)->role, AsRole::kCdn);
}

}  // namespace
}  // namespace haystack::net
