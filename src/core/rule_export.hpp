// Rule-set serialization: a portable, line-oriented text format so a rule
// set built by the methodology pipeline can be shipped to collectors that
// run only the detector (the paper's deployment story: the hitlist is
// rebuilt daily and distributed to the ISP's analysis nodes).
//
// Format (one record per line, tab-separated, '#' comments):
//   rule <service-id> <level> <N> <parent|-> <critical|-> <crit-suff 0|1> <name>
//   mon  <service-id> <monitored-pos> <spec-domain-index>
//   hit  <day> <ip> <port> <service-id> <monitored-pos>
//   excl <service-id> <reason> <dedicated> <total> <name>
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/rules.hpp"

namespace haystack::core {

/// Serializes rules + hitlist + exclusions.
void export_rules(const RuleSet& rules, std::ostream& os);

/// Parses a serialized rule set. Returns nullopt on any syntax error, with
/// a human-readable message in `error` (when non-null). Classification
/// statistics are not part of the format and come back zeroed.
[[nodiscard]] std::optional<RuleSet> import_rules(std::istream& is,
                                                  std::string* error = nullptr);

}  // namespace haystack::core
