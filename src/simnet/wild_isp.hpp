// Wild ISP traffic simulation (paper Sec. 6.2).
//
// Generates what the ISP's border routers *export* for the whole subscriber
// population: already-sampled flow observations. Per (line, device, domain,
// hour) the unsampled packet count is Poisson(rate); under 1-in-N packet
// sampling the exported count is Poisson(rate/N) — the thinning identity —
// so the simulator draws the sampled count directly and never materializes
// the millions of invisible flows. A fast Bernoulli path handles the common
// tiny-rate case.
//
// Each observation carries ground-truth labels (line, unit, domain) used by
// the evaluation harness only — the detector itself consumes just the
// subscriber address and the flow record.
#pragma once

#include <cstdint>
#include <functional>

#include "flow/record.hpp"
#include "simnet/backend.hpp"
#include "simnet/population.hpp"
#include "simnet/rates.hpp"
#include "util/sim_clock.hpp"

namespace haystack::simnet {

/// One sampled flow observation at the ISP border.
struct WildObs {
  LineId line = 0;
  net::IpAddress subscriber;       ///< the line's identifier that day
  UnitId unit = 0;                 ///< truth label (analysis only)
  unsigned domain_index = 0;       ///< truth label (analysis only)
  flow::FlowRecord flow;           ///< as exported (sampled counters)
};

/// Wild-simulation tunables.
struct WildIspConfig {
  std::uint64_t seed = 123;
  /// ISP packet-sampling interval (consistent across border routers).
  std::uint32_t sampling = 1000;
  /// Per device-hour probability of active use before diurnal weighting.
  double base_active_prob = 0.09;
  /// Per device-hour probability of a *heavy* session (voice assistant
  /// streaming music, TV playing video) — the sessions whose sampled
  /// packet counts cross the Sec. 7.1 active-use threshold.
  double heavy_session_prob = 0.008;
  /// Traffic multiplier of a heavy session on top of active_multiplier.
  double heavy_session_factor = 8.0;
};

/// Streaming generator of sampled ISP observations.
class WildIspSim {
 public:
  using Sink = std::function<void(const WildObs&)>;

  WildIspSim(const Backend& backend, const Population& population,
             const DomainRateModel& rates, const WildIspConfig& config);

  /// Emits every sampled observation for one hour into `sink`.
  void hour_observations(util::HourBin hour, const Sink& sink) const;

  /// True when a device instance (line, device index) is in active use in
  /// the given hour; exposed so the usage analysis (Fig. 18) can compare
  /// detector output against truth.
  [[nodiscard]] bool device_active(LineId line, std::uint32_t device_index,
                                   util::HourBin hour) const;

  /// True when the device runs a heavy session (streaming-class traffic)
  /// in the given hour. Heavy implies active.
  [[nodiscard]] bool device_heavy(LineId line, std::uint32_t device_index,
                                  util::HourBin hour) const;

  [[nodiscard]] const WildIspConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const Population& population() const noexcept {
    return population_;
  }

 private:
  const Backend& backend_;
  const Population& population_;
  const DomainRateModel& rates_;
  WildIspConfig config_;
  // Unit ancestor chains, precomputed: chain_units_[u] lists u and all
  // ancestors.
  std::vector<std::vector<UnitId>> chains_;
};

}  // namespace haystack::simnet
