// Figure 6 reproduction: fraction of the top-10/20/30% service IPs (by byte
// count at the Home-VP) that remain visible at the sampled ISP vantage,
// per experiment hour.
#include <iostream>

#include "common.hpp"
#include "telemetry/counters.hpp"
#include "util/stats.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  telemetry::IspVantage isp{{.sampling = 1000, .wire_roundtrip = false}};

  util::print_banner(
      std::cout, "Figure 6: heavy-hitter visibility (ISP-VP vs Home-VP)");
  util::TextTable table;
  table.header({"Hour", "Window", "Top 10%", "Top 20%", "Top 30%",
                "All IPs"});

  util::RunningStats top10, top20, top30, all;
  for (util::HourBin h = 0; h < util::kStudyHours; ++h) {
    const bool active = util::in_active_window(h);
    const bool idle = util::in_idle_window(h);
    if (!active && !idle) continue;

    const auto home = world.gt().hour_flows(h);
    const auto sampled = isp.observe(home, h);
    telemetry::HeavyHitterView hh;
    for (const auto& f : home) {
      hh.add_reference(f.flow.key.dst, f.flow.bytes);
    }
    for (const auto& f : sampled) hh.mark_visible(f.flow.key.dst);

    const double f10 = hh.visible_fraction_of_top(0.1);
    const double f20 = hh.visible_fraction_of_top(0.2);
    const double f30 = hh.visible_fraction_of_top(0.3);
    const double fall = hh.visible_fraction();
    top10.add(f10);
    top20.add(f20);
    top30.add(f30);
    all.add(fall);
    if (h % 8 == 0) {
      table.row({util::hour_label(h), active ? "active" : "idle",
                 util::fmt_percent(f10), util::fmt_percent(f20),
                 util::fmt_percent(f30), util::fmt_percent(fall)});
    }
  }
  table.print(std::cout);
  std::cout << "\nMeans: top10 " << util::fmt_percent(top10.mean())
            << " (paper: >75%, up to 90%), top20 "
            << util::fmt_percent(top20.mean()) << " (paper: ~70%), top30 "
            << util::fmt_percent(top30.mean())
            << " (paper: ~60%), all IPs " << util::fmt_percent(all.mean())
            << " (paper: ~16%)\n";
  return 0;
}
