// Tests for the scenario configuration loader: parsing, override
// application, and error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "simnet/scenario.hpp"

namespace haystack::simnet {
namespace {

TEST(ScenarioTest, ParsesAllKeys) {
  std::istringstream is{R"(
# study: high-sampling, Echo-heavy market
seed 7
lines 123456
sampling 500
rotation 0.10
dual_stack 0.5
base_active_prob 0.05
penetration "Echo Dot" 0.08   # doubled market share
wild_extra "Alexa Enabled" 0.20
)"};
  std::string error;
  const auto scenario = parse_scenario(is, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->seed, 7u);
  EXPECT_EQ(scenario->lines, 123456u);
  EXPECT_EQ(scenario->sampling, 500u);
  EXPECT_DOUBLE_EQ(*scenario->rotation, 0.10);
  ASSERT_EQ(scenario->penetration_overrides.size(), 1u);
  EXPECT_EQ(scenario->penetration_overrides[0].first, "Echo Dot");
  EXPECT_DOUBLE_EQ(scenario->penetration_overrides[0].second, 0.08);
  ASSERT_EQ(scenario->wild_extra_overrides.size(), 1u);

  const auto pop = scenario->apply(PopulationConfig{});
  EXPECT_EQ(pop.lines, 123456u);
  EXPECT_DOUBLE_EQ(pop.daily_rotation_probability, 0.10);
  const auto wild = scenario->apply(WildIspConfig{});
  EXPECT_EQ(wild.sampling, 500u);
  EXPECT_DOUBLE_EQ(wild.base_active_prob, 0.05);
}

TEST(ScenarioTest, OverridesApplyToCatalog) {
  std::istringstream is{
      "penetration \"Echo Dot\" 0.09\nwild_extra \"Samsung IoT\" 0.02\n"};
  const auto scenario = parse_scenario(is);
  ASSERT_TRUE(scenario.has_value());
  Catalog catalog;
  std::string error;
  ASSERT_TRUE(scenario->apply_overrides(catalog, &error)) << error;
  EXPECT_DOUBLE_EQ(catalog.product_by_name("Echo Dot")->penetration, 0.09);
  EXPECT_DOUBLE_EQ(
      catalog.unit_by_name("Samsung IoT")->wild_extra_penetration, 0.02);
}

TEST(ScenarioTest, UnknownNamesFailLoudly) {
  std::istringstream is{"penetration \"No Such Device\" 0.1\n"};
  const auto scenario = parse_scenario(is);
  ASSERT_TRUE(scenario.has_value());
  Catalog catalog;
  std::string error;
  EXPECT_FALSE(scenario->apply_overrides(catalog, &error));
  EXPECT_NE(error.find("No Such Device"), std::string::npos);
}

TEST(ScenarioTest, SyntaxErrorsReported) {
  const auto expect_error = [](const std::string& text) {
    std::istringstream is{text};
    std::string error;
    EXPECT_FALSE(parse_scenario(is, &error).has_value()) << text;
    EXPECT_FALSE(error.empty());
  };
  expect_error("bogus 1\n");
  expect_error("sampling 0\n");
  expect_error("rotation 1.5\n");
  expect_error("penetration \"Echo Dot\" 2.0\n");
  expect_error("lines notanumber\n");
}

TEST(ScenarioTest, EmptyInputIsValid) {
  std::istringstream is{"\n# nothing\n"};
  const auto scenario = parse_scenario(is);
  ASSERT_TRUE(scenario.has_value());
  EXPECT_FALSE(scenario->seed.has_value());
  EXPECT_TRUE(scenario->penetration_overrides.empty());
}

}  // namespace
}  // namespace haystack::simnet
