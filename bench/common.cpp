#include "common.hpp"

#include <cstdio>
#include <cstdlib>

namespace haystack::bench {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

SimWorld::SimWorld() {
  const std::uint64_t seed = env_u64("HAYSTACK_SEED", 42);
  const auto lines =
      static_cast<std::uint32_t>(env_u64("HAYSTACK_LINES", 80'000));

  catalog_ = std::make_unique<simnet::Catalog>();
  simnet::BackendConfig backend_config;
  backend_config.seed = seed;
  backend_ = std::make_unique<simnet::Backend>(*catalog_, backend_config);
  simnet::GroundTruthConfig gt_config;
  gt_ = std::make_unique<simnet::GroundTruthSim>(*backend_, gt_config);
  rules_ = std::make_unique<core::RuleSet>(simnet::build_ruleset(*backend_));
  rates_ = std::make_unique<simnet::DomainRateModel>(*catalog_,
                                                     gt_config.seed);
  population_ = std::make_unique<simnet::Population>(
      *catalog_, simnet::PopulationConfig{.seed = 99, .lines = lines});
  wild_ = std::make_unique<simnet::WildIspSim>(
      *backend_, *population_, *rates_, simnet::WildIspConfig{});
}

std::uint32_t SimWorld::lines() const { return population_->line_count(); }

core::ServiceId SimWorld::service(const std::string& name) const {
  const auto* rule = rules_->rule_by_name(name);
  if (rule == nullptr) {
    std::fprintf(stderr, "unknown service: %s\n", name.c_str());
    std::abort();
  }
  return rule->service;
}

void WildSweep::run(util::HourBin first_hour, util::HourBin last_hour) {
  core::Detector hourly_det{world_.rules().hitlist, world_.rules(),
                            {.threshold = 0.4}};
  core::Detector daily_det{world_.rules().hitlist, world_.rules(),
                           {.threshold = 0.4}};

  auto collect = [](const core::Detector& det) {
    BinResult bin;
    det.for_each_evidence([&](core::SubscriberKey s, core::ServiceId sv,
                              const core::Evidence&) {
      if (det.detected(s, sv)) {
        bin.by_service[sv].insert(static_cast<simnet::LineId>(s));
      }
    });
    return bin;
  };

  for (util::HourBin h = first_hour; h < last_hour; ++h) {
    world_.wild().hour_observations(h, [&](const simnet::WildObs& o) {
      const auto hit = hourly_det.observe(o.line, o.flow.key.dst,
                                          o.flow.key.dst_port,
                                          o.flow.packets, h);
      daily_det.observe(o.line, o.flow.key.dst, o.flow.key.dst_port,
                        o.flow.packets, h);
      if (hit && on_match_) on_match_(o, *hit, h);
    });

    if (hourly_) hourly_(h, collect(hourly_det));
    hourly_det.clear();
    if (util::hour_of_day(h) == 23 || h + 1 == last_hour) {
      if (daily_) daily_(util::day_start(util::day_of(h)),
                         collect(daily_det));
      daily_det.clear();
    }
  }
}

std::size_t other32_count(const SimWorld& world, const BinResult& bin) {
  static const std::set<std::string> kExcluded = {
      "Alexa Enabled", "Amazon Product", "Fire TV", "Samsung IoT",
      "Samsung TV"};
  std::set<simnet::LineId> lines;
  for (const auto& rule : world.rules().rules) {
    if (kExcluded.contains(rule.name)) continue;
    const auto it = bin.by_service.find(rule.service);
    if (it == bin.by_service.end()) continue;
    lines.insert(it->second.begin(), it->second.end());
  }
  return lines.size();
}

std::size_t any_count(const BinResult& bin) {
  std::set<simnet::LineId> lines;
  for (const auto& [service, subs] : bin.by_service) {
    lines.insert(subs.begin(), subs.end());
  }
  return lines.size();
}

}  // namespace haystack::bench
