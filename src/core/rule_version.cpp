#include "core/rule_version.hpp"

#include <algorithm>

#include "core/intern.hpp"

namespace haystack::core {

std::shared_ptr<const CompiledRuleVersion> compile_rules(
    const Hitlist& hitlist, const RuleSet& rules,
    const DetectorConfig& config, std::uint64_t id,
    std::shared_ptr<const RuleSet> owned, bool build_index,
    InternTable* intern) {
  auto v = std::make_shared<CompiledRuleVersion>();
  v->id = id;
  v->rules = &rules;
  v->hitlist = &hitlist;
  v->owned = std::move(owned);
  v->config = config;

  ServiceId max_id = 0;
  for (const auto& r : rules.rules) max_id = std::max(max_id, r.service);
  v->rule_of.assign(max_id + 1U, nullptr);
  for (const auto& r : rules.rules) v->rule_of[r.service] = &r;

  v->fast_rules.assign(v->rule_of.size(), RuleFast{});
  for (std::size_t s = 0; s < v->rule_of.size(); ++s) {
    const DetectionRule* rule = v->rule_of[s];
    if (rule == nullptr) continue;
    RuleFast& fast = v->fast_rules[s];
    fast.has_rule = true;
    fast.required = static_cast<std::uint16_t>(
        std::min(rule->required_domains(config.threshold), 0xffffU));
    if (rule->critical_sufficient && rule->critical_monitored_index &&
        *rule->critical_monitored_index < 128) {
      const std::uint16_t idx = *rule->critical_monitored_index;
      fast.critical_mask[idx >> 6] |= std::uint64_t{1} << (idx & 63U);
    }
  }

  if (build_index) {
    auto index = std::make_shared<SignatureIndex>();
    index->build(hitlist, rules, intern);
    v->index = std::move(index);
  }
  return v;
}

std::optional<util::HourBin> eval_detection_hour(
    const FlatEvidenceMap<Evidence>& evidence, const CompiledRuleVersion& v,
    SubscriberKey subscriber, ServiceId service) {
  util::HourBin latest = 0;
  std::optional<ServiceId> current = service;
  while (current) {
    const DetectionRule* rule = v.rule_for(*current);
    if (rule == nullptr) return std::nullopt;
    const Evidence* ev = evidence.find(subscriber, *current);
    if (ev == nullptr || !ev->satisfied()) {
      return std::nullopt;
    }
    latest = std::max(latest, ev->satisfied_hour());
    current = rule->parent;
  }
  return latest;
}

Verdict eval_verdict(const FlatEvidenceMap<Evidence>& evidence,
                     const CompiledRuleVersion& v, double observed_loss,
                     SubscriberKey subscriber, ServiceId service) {
  if (const auto hour = eval_detection_hour(evidence, v, subscriber, service)) {
    return {true, Confidence::kHigh, hour, v.id};
  }
  const bool degraded = observed_loss > v.config.loss_tolerance;
  if (!degraded) return {false, Confidence::kHigh, std::nullopt, v.id};

  // Degraded channel: an estimated fraction `observed_loss` of the export
  // stream never reached us, so scale the evidence requirement down
  // proportionally (never below one domain) and re-evaluate the hierarchy
  // chain on current evidence. Whatever the answer, it is low-confidence.
  std::optional<ServiceId> current = service;
  while (current) {
    const DetectionRule* rule = v.rule_for(*current);
    if (rule == nullptr) return {false, Confidence::kLow, std::nullopt, v.id};
    const Evidence* found = evidence.find(subscriber, *current);
    if (found == nullptr) return {false, Confidence::kLow, std::nullopt, v.id};
    const Evidence& ev = *found;
    const bool critical_ok =
        rule->critical_sufficient && rule->critical_monitored_index &&
        *rule->critical_monitored_index < 128 &&
        ev.sees(*rule->critical_monitored_index);
    const unsigned required = rule->required_domains(v.config.threshold);
    const auto relaxed = std::max<unsigned>(
        1, static_cast<unsigned>(static_cast<double>(required) *
                                 (1.0 - observed_loss)));
    if (!critical_ok && ev.distinct() < relaxed) {
      return {false, Confidence::kLow, std::nullopt, v.id};
    }
    current = rule->parent;
  }
  return {true, Confidence::kLow, std::nullopt, v.id};
}

}  // namespace haystack::core
