// Wild IXP traffic simulation (paper Sec. 6.3).
//
// The IXP vantage point differs from the ISP in three ways the paper calls
// out, all modelled here:
//
//   1. sampling an order of magnitude lower (IPFIX, default 1-in-10000);
//   2. a mid-network view: routing is asymmetric and only some
//      (member AS, backend) pairs route across the IXP fabric at all;
//   3. no ISP-side spoofing protection, so the pipeline may only count TCP
//      flows for which a non-handshake packet proves an established
//      connection.
//
// Member ASes: a few large eyeballs hold most of the IoT devices (Fig. 16's
// skew) with a long tail of devices inside non-eyeball members.
#pragma once

#include <cstdint>
#include <functional>

#include "flow/record.hpp"
#include "simnet/backend.hpp"
#include "simnet/rates.hpp"
#include "util/sim_clock.hpp"

namespace haystack::simnet {

/// One sampled IPFIX observation on the IXP fabric.
struct IxpObs {
  net::Asn member = 0;             ///< member AS the device sits behind
  net::IpAddress device_ip;        ///< device-side address
  UnitId unit = 0;                 ///< truth label (analysis only)
  unsigned domain_index = 0;       ///< truth label (analysis only)
  flow::FlowRecord flow;
};

/// IXP model tunables.
struct IxpConfig {
  std::uint64_t seed = 321;
  /// IPFIX packet-sampling interval (an order of magnitude lower than the
  /// ISP's NetFlow sampling).
  std::uint32_t sampling = 10'000;
  /// Households behind the largest eyeball member; member i gets
  /// households / (i+1)^eyeball_skew.
  std::uint32_t eyeball_households = 120'000;
  double eyeball_skew = 0.8;
  /// Mean IoT device count inside each non-eyeball member.
  double member_device_mean = 3.0;
  /// Probability that a given (member, backend-vendor) pair routes across
  /// the IXP at all (routing asymmetry / partial visibility).
  double cross_ixp_probability = 0.55;
};

/// Streaming generator of sampled IXP observations, one day at a time
/// (the IXP analysis is daily — Figs. 15/16).
class WildIxpSim {
 public:
  using Sink = std::function<void(const IxpObs&)>;

  WildIxpSim(const Backend& backend, const DomainRateModel& rates,
             const IxpConfig& config);

  /// Emits every sampled, established-TCP-verified observation for `day`.
  void day_observations(util::DayBin day, const Sink& sink) const;

  /// Households modelled behind one member AS.
  [[nodiscard]] std::uint32_t households_of(net::Asn member) const;

  [[nodiscard]] const IxpConfig& config() const noexcept { return config_; }

 private:
  void member_observations(net::Asn member, std::uint32_t households,
                           bool eyeball, util::DayBin day,
                           const Sink& sink) const;

  const Backend& backend_;
  const DomainRateModel& rates_;
  IxpConfig config_;
  std::vector<std::vector<UnitId>> chains_;
};

}  // namespace haystack::simnet
