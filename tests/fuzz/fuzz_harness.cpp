#include "fuzz_harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace haystack::fuzz {

namespace {

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--iterations N] [--seed S] [--only-iteration K]\n",
               argv0);
  std::exit(2);
}

std::uint64_t parse_u64(const char* argv0, const char* text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') usage_and_exit(argv0);
  return v;
}

}  // namespace

FuzzConfig parse_args(int argc, char** argv) {
  FuzzConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--iterations") == 0 && has_value) {
      config.iterations = parse_u64(argv[0], argv[++i]);
    } else if (std::strcmp(arg, "--seed") == 0 && has_value) {
      config.seed = parse_u64(argv[0], argv[++i]);
    } else if (std::strcmp(arg, "--only-iteration") == 0 && has_value) {
      config.only_iteration =
          static_cast<std::int64_t>(parse_u64(argv[0], argv[++i]));
    } else {
      usage_and_exit(argv[0]);
    }
  }
  return config;
}

void mutate(Bytes& data, util::Pcg32& rng) {
  const std::uint32_t edits = 1 + rng.bounded(4);
  for (std::uint32_t e = 0; e < edits; ++e) {
    if (data.empty()) {
      data.push_back(static_cast<std::uint8_t>(rng.bounded(256)));
      continue;
    }
    const auto at = [&] { return rng.bounded(
        static_cast<std::uint32_t>(data.size())); };
    switch (rng.bounded(8)) {
      case 0:  // bit flip
        data[at()] ^= static_cast<std::uint8_t>(1U << rng.bounded(8));
        break;
      case 1:  // byte store
        data[at()] = static_cast<std::uint8_t>(rng.bounded(256));
        break;
      case 2: {  // 16-bit big-endian field corruption (length fields,
                 // counts, ids all live in u16s on these wires)
        const std::size_t pos = at();
        if (pos + 1 >= data.size()) break;
        // Interesting boundary values dominate random ones.
        constexpr std::uint16_t kBoundary[] = {0,      1,      3,     4,
                                               0x00ff, 0x0100, 0x7fff,
                                               0x8000, 0xfffe, 0xffff};
        const std::uint16_t v = rng.chance(0.6)
                                    ? kBoundary[rng.bounded(10)]
                                    : static_cast<std::uint16_t>(
                                          rng.bounded(0x10000));
        data[pos] = static_cast<std::uint8_t>(v >> 8);
        data[pos + 1] = static_cast<std::uint8_t>(v);
        break;
      }
      case 3:  // truncate tail
        data.resize(at());
        break;
      case 4: {  // extend with random bytes
        const std::uint32_t extra = 1 + rng.bounded(16);
        for (std::uint32_t i = 0; i < extra; ++i) {
          data.push_back(static_cast<std::uint8_t>(rng.bounded(256)));
        }
        break;
      }
      case 5: {  // duplicate a region onto another position
        const std::size_t from = at();
        const std::size_t to = at();
        const std::size_t len = std::min<std::size_t>(
            1 + rng.bounded(8),
            data.size() - std::max(from, to));
        std::memmove(data.data() + to, data.data() + from, len);
        break;
      }
      case 6: {  // swap two bytes
        const std::size_t a = at();
        const std::size_t b = at();
        std::swap(data[a], data[b]);
        break;
      }
      default: {  // zero a short region
        const std::size_t pos = at();
        const std::size_t len =
            std::min<std::size_t>(1 + rng.bounded(8), data.size() - pos);
        std::memset(data.data() + pos, 0, len);
        break;
      }
    }
  }
}

int run_fuzz(const std::string& name, const FuzzConfig& config,
             const std::vector<Bytes>& corpus,
             const std::function<void(Bytes&, util::Pcg32&)>& structure_mutate,
             const std::function<bool(std::span<const std::uint8_t>)>& check) {
  if (corpus.empty()) {
    std::fprintf(stderr, "%s: empty corpus\n", name.c_str());
    return 2;
  }
  const std::uint64_t first =
      config.only_iteration >= 0
          ? static_cast<std::uint64_t>(config.only_iteration)
          : 0;
  const std::uint64_t last =
      config.only_iteration >= 0
          ? static_cast<std::uint64_t>(config.only_iteration) + 1
          : config.iterations;

  for (std::uint64_t iter = first; iter < last; ++iter) {
    // One independent generator per iteration: --only-iteration replays
    // the identical input without running the preceding iterations.
    util::Pcg32 rng = util::derive_rng(config.seed, iter, 0xf022);
    Bytes input = corpus[rng.bounded(
        static_cast<std::uint32_t>(corpus.size()))];
    const bool structural = structure_mutate && rng.chance(0.5);
    if (structural) structure_mutate(input, rng);
    if (!structural || rng.chance(0.5)) mutate(input, rng);
    if (!check(input)) {
      std::fprintf(stderr,
                   "%s: property violated at iteration %llu\n"
                   "reproduce with: %s --seed %llu --only-iteration %llu\n",
                   name.c_str(), static_cast<unsigned long long>(iter),
                   name.c_str(),
                   static_cast<unsigned long long>(config.seed),
                   static_cast<unsigned long long>(iter));
      return 1;
    }
  }
  std::printf("%s: %llu iterations, 0 failures (seed %llu)\n", name.c_str(),
              static_cast<unsigned long long>(last - first),
              static_cast<unsigned long long>(config.seed));
  return 0;
}

}  // namespace haystack::fuzz
