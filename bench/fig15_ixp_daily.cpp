// Figure 15 reproduction: unique device IPs with detected IoT activity per
// day at the IXP (IPFIX at 10x lower sampling, established-TCP guard,
// routing asymmetry), split into Samsung IoT, Alexa Enabled, and the other
// 32 device types.
#include <iostream>
#include <set>

#include "common.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  simnet::IxpConfig config;
  config.eyeball_households = static_cast<std::uint32_t>(
      bench::env_u64("HAYSTACK_IXP_HOUSEHOLDS", 60'000));
  simnet::WildIxpSim ixp{world.backend(), world.rates(), config};

  const auto* alexa = world.catalog().unit_by_name("Alexa Enabled");
  const auto* amazonu = world.catalog().unit_by_name("Amazon Product");
  const auto* firetv = world.catalog().unit_by_name("Fire TV");
  const auto* samsung = world.catalog().unit_by_name("Samsung IoT");
  const auto* stv = world.catalog().unit_by_name("Samsung TV");

  util::print_banner(std::cout,
                     "Figure 15: unique IPs with IoT activity per day at "
                     "the IXP");
  util::TextTable table;
  table.header({"Day", "Alexa Enabled", "Samsung IoT", "Other 32",
                "Flows sampled"});
  for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
    std::set<net::IpAddress> alexa_ips, samsung_ips, other_ips;
    std::size_t flows = 0;
    ixp.day_observations(day, [&](const simnet::IxpObs& o) {
      ++flows;
      if (o.unit == alexa->id) {
        alexa_ips.insert(o.device_ip);
      } else if (o.unit == samsung->id) {
        samsung_ips.insert(o.device_ip);
      } else if (o.unit != amazonu->id && o.unit != firetv->id &&
                 o.unit != stv->id) {
        other_ips.insert(o.device_ip);
      }
    });
    table.row({util::day_label(day), util::fmt_count(alexa_ips.size()),
               util::fmt_count(samsung_ips.size()),
               util::fmt_count(other_ips.size()), util::fmt_count(flows)});
  }
  table.print(std::cout);
  std::cout << "\nPaper (absolute, at the real IXP): ~200k Alexa, ~90k "
               "Samsung, >100k other IPs per day; here the ordering and "
               "stability are the reproduced shape (simulated member "
               "population is smaller).\n";
  return 0;
}
