// Quickstart: the smallest end-to-end use of the library's public API.
//
// Builds the simulated world (device catalog, backend infrastructure,
// passive-DNS + certificate-scan databases), derives detection rules the
// way the paper does (Fig. 7), and then detects IoT devices on one
// subscriber line from sampled flow records.
//
//   cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/detector.hpp"
#include "simnet/backend.hpp"
#include "simnet/ground_truth.hpp"
#include "simnet/manual_analysis.hpp"
#include "telemetry/vantage.hpp"

int main() {
  using namespace haystack;

  // 1. The world: testbed catalog + backend infrastructure. The Backend
  //    also materializes the two external datasets the methodology needs
  //    (a passive-DNS database and a certificate-scan database).
  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};

  // 2. Methodology (paper Sec. 4): classify every candidate domain's
  //    hosting as dedicated or shared, build the daily hitlist, and emit
  //    one detection rule per detectable service.
  const core::RuleSet rules = simnet::build_ruleset(backend);
  std::cout << "Generated " << rules.rules.size() << " detection rules ("
            << rules.excluded.size() << " services excluded); hitlist has "
            << rules.hitlist.total_size() << " (IP, port, day) entries\n";

  // 3. Traffic: one hour of ground-truth testbed traffic, sampled at
  //    1-in-1000 through a real NetFlow v9 encode/decode round trip —
  //    exactly what an ISP border router exports.
  simnet::GroundTruthSim testbed{backend, simnet::GroundTruthConfig{}};
  telemetry::IspVantage isp{{.sampling = 1000, .wire_roundtrip = true}};

  // 4. Detection: stream sampled flows into the detector. The subscriber
  //    key would be an anonymized line identifier in production.
  core::Detector detector{rules.hitlist, rules, {.threshold = 0.4}};
  constexpr core::SubscriberKey kLine = 1;
  for (util::HourBin hour = 0; hour < 24; ++hour) {
    for (const auto& labeled : isp.observe(testbed.hour_flows(hour), hour)) {
      detector.observe(kLine, labeled.flow.key.dst,
                       labeled.flow.key.dst_port, labeled.flow.packets,
                       hour);
    }
  }

  // 5. Results: which IoT services were detected behind the line?
  std::cout << "\nDetected on the ground-truth line within 24h:\n";
  for (const auto& rule : rules.rules) {
    if (const auto hour = detector.detection_hour(kLine, rule.service)) {
      std::cout << "  " << rule.name << " ("
                << core::level_name(rule.level) << " level) after " << *hour
                << "h\n";
    }
  }
  std::cout << "\nProcessed " << detector.stats().flows
            << " sampled flows, of which " << detector.stats().matched
            << " matched the hitlist\n";
  return 0;
}
