// IPFIX message codec (RFC 7011).
//
// The IXP vantage point collects IPFIX across its switching fabric. This
// codec implements the real message format: the 16-byte message header
// (version 10, total length, export time, sequence number counting data
// records, observation domain), template sets (set id 2) and data sets
// (set id >= 256). The decoder additionally understands enterprise-numbered
// fields (high bit of the IE id, RFC 7011 §3.2) and variable-length fields
// (field length 65535, §7), skipping their content, so it survives
// real-world exporters that interleave vendor IEs with the standard ones.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "flow/record.hpp"
#include "flow/wire.hpp"

namespace haystack::flow::ipfix {

/// IANA information element ids used by this implementation.
enum class Ie : std::uint16_t {
  kOctetDeltaCount = 1,
  kPacketDeltaCount = 2,
  kProtocolIdentifier = 4,
  kTcpControlBits = 6,
  kSourceTransportPort = 7,
  kSourceIpv4Address = 8,
  kDestinationTransportPort = 11,
  kDestinationIpv4Address = 12,
  kSourceIpv6Address = 27,
  kDestinationIpv6Address = 28,
  kSamplingInterval = 34,
  kFlowStartMilliseconds = 152,
  kFlowEndMilliseconds = 153,
};

inline constexpr std::uint16_t kTemplateSetId = 2;
inline constexpr std::uint16_t kOptionsTemplateSetId = 3;
inline constexpr std::uint16_t kTemplateV4 = 300;
inline constexpr std::uint16_t kTemplateV6 = 301;
inline constexpr std::uint16_t kSamplingOptionsTemplateId = 400;
/// samplingAlgorithm IE (deprecated in favour of selector IEs, but still
/// what fielded exporters emit alongside samplingInterval).
inline constexpr std::uint16_t kIeSamplingAlgorithm = 35;

/// Encodes a stand-alone IPFIX message announcing the observation domain's
/// sampling configuration through an options template (set id 3, RFC 7011
/// §3.4.2.2) plus one options data record.
[[nodiscard]] std::vector<std::uint8_t> encode_sampling_options(
    std::uint32_t observation_domain, std::uint32_t interval,
    std::uint32_t export_time, std::uint32_t sequence);

/// Exporter configuration.
struct ExporterConfig {
  std::uint32_t observation_domain = 1;
  std::uint32_t sampling = 1;
  std::size_t max_records_per_message = 24;
  std::uint32_t template_refresh_messages = 20;
};

/// Stateful IPFIX exporter.
class Exporter {
 public:
  explicit Exporter(ExporterConfig config) noexcept : config_{config} {}

  /// Encodes `records` into one or more IPFIX messages. The message
  /// sequence number counts cumulative data records per RFC 7011 §3.1.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> export_flows(
      std::span<const FlowRecord> records, std::uint32_t export_time);

  [[nodiscard]] std::uint32_t messages_sent() const noexcept {
    return messages_sent_;
  }
  [[nodiscard]] std::uint32_t records_sent() const noexcept {
    return records_sent_;
  }

 private:
  void write_templates(ByteWriter& w) const;

  ExporterConfig config_;
  std::uint32_t messages_sent_ = 0;
  std::uint32_t records_sent_ = 0;
};

/// Decoder statistics.
struct CollectorStats {
  std::uint64_t messages = 0;
  std::uint64_t records = 0;
  std::uint64_t templates_learned = 0;
  std::uint64_t options_templates_learned = 0;
  std::uint64_t unknown_template_sets = 0;
  std::uint64_t malformed_messages = 0;
  std::uint64_t sequence_gaps = 0;  ///< detected lost data records
};

/// Stateful IPFIX collector with sequence-gap tracking.
class Collector {
 public:
  /// Decodes one IPFIX message, appending records to `out`. Returns false
  /// on malformed input.
  bool ingest(std::span<const std::uint8_t> message,
              std::vector<FlowRecord>& out);

  [[nodiscard]] const CollectorStats& stats() const noexcept { return stats_; }

  /// Sampling interval announced by an observation domain via options data,
  /// or nullopt when none was seen.
  [[nodiscard]] std::optional<std::uint32_t> announced_sampling(
      std::uint32_t observation_domain) const;

 private:
  struct TemplateField {
    std::uint16_t id;          ///< IE id without the enterprise bit
    std::uint16_t length;      ///< 65535 = variable length
    bool enterprise = false;
  };
  using Template = std::vector<TemplateField>;

  bool decode_template_set(ByteReader& r, std::uint32_t domain);
  bool decode_options_template_set(ByteReader& r, std::uint32_t domain);
  bool decode_data_set(ByteReader& r, std::uint16_t set_id,
                       std::uint32_t domain, std::vector<FlowRecord>& out);
  bool decode_options_data(ByteReader& r, std::uint16_t set_id,
                           std::uint32_t domain);

  struct OptionsTemplate {
    std::uint16_t scope_bytes = 0;
    std::vector<TemplateField> fields;
  };
  std::map<std::pair<std::uint32_t, std::uint16_t>, Template> templates_;
  std::map<std::pair<std::uint32_t, std::uint16_t>, OptionsTemplate>
      options_templates_;
  std::map<std::uint32_t, std::uint32_t> announced_sampling_;
  std::map<std::uint32_t, std::uint32_t> expected_sequence_;
  CollectorStats stats_;
};

}  // namespace haystack::flow::ipfix
