// Sharded, thread-parallel detector with a persistent worker pool.
//
// The per-flow work is one hash lookup plus a bitset update, so a single
// core already absorbs an ISP's sampled flow volume (see bench/
// perf_pipeline). For headroom — or for replaying weeks of archived flows
// "within minutes" — the detector shards by subscriber: evidence for one
// subscriber lives in exactly one shard, shards share the immutable
// hitlist and rules, and each shard owns a long-lived worker thread
// consuming its own bounded queue of observation chunks
// (pipeline::ShardPool). Batches stream through persistent workers
// instead of spawning threads per batch, enqueue_batch() lets an upstream
// pipeline stage keep feeding without a barrier, and blocking
// backpressure bounds memory when producers outrun the shards.
//
// Ordering contract: observations for one subscriber always route to the
// same shard queue (FIFO, single consumer), so per-subscriber relative
// order — and therefore the evidence bits — is identical to a sequential
// replay, for any shard count, queue capacity, or batching.
//
// Read APIs first wait for quiescence (drain()), so anything observed or
// batched before a read is visible to it — the synchronous contract is
// unchanged. observe() and enqueue_batch() are safe to call concurrently
// from multiple threads (including concurrently with process_batch).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/detector.hpp"
#include "core/intern.hpp"
#include "core/signature_index.hpp"
#include "obs/observability.hpp"
#include "pipeline/shard_pool.hpp"

namespace haystack::core {

/// One flow observation, direction-normalized.
struct Observation {
  SubscriberKey subscriber = 0;
  net::IpAddress server;
  std::uint16_t port = 0;
  std::uint64_t packets = 0;
  util::HourBin hour = 0;
};

/// One boundary-interned observation (ISSUE 6): the hitlist lookup is
/// already folded into a packed Signature, so shard queues carry 24-byte
/// POD items and workers never touch an IP address or a string. Producers
/// resolve `sig` with `signature_index().sig_of(server, port,
/// util::day_of(hour))`; kNoSig rides through and counts as a miss.
struct InternedObs {
  SubscriberKey subscriber = 0;
  std::uint64_t packets = 0;
  Signature sig = kNoSig;
  util::HourBin hour = 0;
};

/// Detector sharded by subscriber key.
class ShardedDetector {
 public:
  /// `shards` worker partitions (>= 1), each with its own bounded chunk
  /// queue of `queue_capacity` entries. Shares `hitlist`/`rules` which
  /// must outlive the detector. When `obs` is non-null, each shard gets
  /// per-shard registry instruments (labels {{"shard", N}}) including its
  /// own detect-stage wave histograms, and the shard pool records
  /// backpressure/slow-wave flight events.
  ShardedDetector(const Hitlist& hitlist, const RuleSet& rules,
                  const DetectorConfig& config, unsigned shards,
                  std::size_t queue_capacity = 1024,
                  obs::Observability* obs = nullptr);
  ~ShardedDetector();

  ShardedDetector(const ShardedDetector&) = delete;
  ShardedDetector& operator=(const ShardedDetector&) = delete;

  /// Processes a batch synchronously: partitions by subscriber shard,
  /// enqueues one chunk per shard, and waits for quiescence. Observations
  /// for one subscriber keep their relative order.
  void process_batch(std::span<const Observation> batch);

  /// Streaming path: like process_batch but without the barrier — the
  /// caller may keep enqueueing while shard workers consume. Blocks only
  /// when a shard queue is full (backpressure).
  void enqueue_batch(std::span<const Observation> batch);

  /// Streaming path for observations whose hitlist lookup was already
  /// resolved at the decode boundary (pipeline fast path). Identical
  /// semantics to enqueue_batch on the equivalent Observation stream.
  void enqueue_interned(std::span<const InternedObs> batch);

  /// Single-observation path, routed through the owning shard's queue —
  /// safe to call concurrently with process_batch/enqueue_batch from any
  /// thread. Applied by the time any read API returns.
  void observe(const Observation& obs);

  /// Quiescence barrier: returns once everything enqueued before the call
  /// has been applied. All read APIs call this implicitly.
  void drain() const;

  /// Hierarchy-aware detection (delegates to the owning shard).
  [[nodiscard]] bool detected(SubscriberKey subscriber,
                              ServiceId service) const;
  [[nodiscard]] std::optional<util::HourBin> detection_hour(
      SubscriberKey subscriber, ServiceId service) const;

  /// Loss-aware verdict (delegates to the owning shard).
  [[nodiscard]] Verdict verdict(SubscriberKey subscriber,
                                ServiceId service) const;

  /// Propagates the estimated channel loss to every shard.
  void set_observed_loss(double fraction) noexcept;

  /// Checkpoint support: routes the evidence row to its owning shard /
  /// installs the saved totals (in shard 0, so stats() reproduces them).
  /// Not safe concurrently with producers (restore is a cold path).
  void restore_evidence(SubscriberKey subscriber, ServiceId service,
                        const Evidence& evidence);
  void restore_stats(const Detector::Stats& stats);

  /// Visits evidence across all shards (single-threaded).
  void for_each_evidence(
      const std::function<void(SubscriberKey, ServiceId, const Evidence&)>&
          fn) const;

  void clear();

  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  [[nodiscard]] Detector::Stats stats() const;
  /// Shared per-shard configuration.
  [[nodiscard]] const DetectorConfig& config() const noexcept {
    return shards_[0]->config();
  }
  /// Shared rule set (checkpoint code resolves rule names through it).
  [[nodiscard]] const RuleSet& rules() const noexcept {
    return shards_[0]->rules();
  }

  /// Per-shard ingest-queue telemetry (depth/throughput/stalls).
  [[nodiscard]] telemetry::StageStats shard_queue_stats(
      unsigned shard) const;

  /// The precompiled (IP, port, day) -> Signature index, built from the
  /// hitlist at construction. Producers use it to intern observations at
  /// the decode boundary before enqueue_interned().
  [[nodiscard]] const SignatureIndex& signature_index() const noexcept {
    return sig_index_;
  }

  /// Rule-name / monitored-domain-label intern table populated by the
  /// signature-index build (HSCK v2 keys evidence rows through it).
  [[nodiscard]] const InternTable& intern_table() const noexcept {
    return intern_;
  }
  [[nodiscard]] InternTable& intern_table() noexcept { return intern_; }

 private:
  using Chunk = std::vector<InternedObs>;

  /// Producer-side coalescing bound (ISSUE 6): enqueue paths append into
  /// per-shard pending chunks under `pending_mu_` and submit a chunk only
  /// once it holds this many observations (or at the next drain/flush).
  /// Queue and worker-wakeup traffic then scales with flushes instead of
  /// with producer chunk boundaries — on a 256-observation producer chunk
  /// at 8 shards, per-chunk submission meant eight ~16-item queue
  /// operations and up to eight wakeups, which dominated the streaming
  /// bench. Per-subscriber FIFO is unaffected: appends are totally
  /// ordered by the mutex and a flush preserves append order.
  static constexpr std::size_t kCoalesceItems = 4096;

  [[nodiscard]] std::size_t shard_of(SubscriberKey subscriber) const {
    // Two-multiply avalanche (the murmur3 finalizer — byte-wise FNV costs
    // eight dependent multiplies) followed by a Lemire multiply-shift
    // range mapping: (h * n) >> 64 lands uniformly in [0, n) without the
    // integer divide a `% n` costs on every observation. Shard
    // assignment is an internal detail — evidence equality is checked
    // order-insensitively — but it must stay stable for a detector's
    // lifetime, which this is (n is fixed at build).
    std::uint64_t h = subscriber;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(h) *
         static_cast<unsigned __int128>(shards_.size())) >>
        64U);
  }

  /// Submits every non-empty pending chunk to its shard queue.
  void flush_pending() const;

  /// Resolves one Observation to its interned form, counting hits.
  [[nodiscard]] InternedObs intern_obs(const Observation& obs,
                                       std::uint64_t& hits) const {
    const Signature sig =
        sig_index_.sig_of(obs.server, obs.port, util::day_of(obs.hour));
    hits += (sig != kNoSig) ? 1U : 0U;
    return {obs.subscriber, obs.packets, sig, obs.hour};
  }

  /// Batched signature-lookup telemetry (one add per enqueue, not per
  /// observation).
  void bump_sig_counters(std::uint64_t lookups, std::uint64_t hits) {
    if (sig_lookups_) sig_lookups_->add(lookups);
    if (sig_hits_ && hits != 0) sig_hits_->add(hits);
  }

  /// Folds boundary-filtered misses into shard `s`'s flow accounting:
  /// stats().flows and the shard's detector_flows_total series stay
  /// exactly what a filter-free enqueue would have produced.
  void count_misses(std::size_t s, std::uint64_t misses) {
    if (misses == 0) return;
    missed_[s].v.fetch_add(misses, std::memory_order_relaxed);
    if (const auto& c = shards_[s]->instruments().flows) c->add(misses);
  }

  /// Per-shard miss counters, cache-line padded (producers on different
  /// shards must not false-share).
  struct alignas(64) PaddedCount {
    std::atomic<std::uint64_t> v{0};
  };

  std::vector<std::unique_ptr<Detector>> shards_;
  SignatureIndex sig_index_;
  InternTable intern_;
  std::unique_ptr<PaddedCount[]> missed_;
  std::shared_ptr<obs::Counter> sig_lookups_;
  std::shared_ptr<obs::Counter> sig_hits_;
  // Keep the per-shard detect-stage wave histograms alive for the pool's
  // lifetime (the pool config holds raw pointers into them).
  std::vector<std::shared_ptr<obs::Histogram>> detect_wave_ns_;
  std::vector<std::shared_ptr<obs::Histogram>> detect_wave_items_;
  // mutable: drain() is logically const — it completes writes that the
  // API contract already promised were visible, which includes flushing
  // the coalescing buffers.
  mutable std::mutex pending_mu_;
  mutable std::vector<Chunk> pending_;
  mutable std::unique_ptr<pipeline::ShardPool<Chunk>> pool_;
};

}  // namespace haystack::core
