#include "core/rules.hpp"

#include <algorithm>

namespace haystack::core {

const DetectionRule* RuleSet::rule_for(ServiceId service) const {
  for (const auto& r : rules) {
    if (r.service == service) return &r;
  }
  return nullptr;
}

const DetectionRule* RuleSet::rule_by_name(std::string_view name) const {
  for (const auto& r : rules) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

RuleSet generate_rules(const std::vector<ServiceSpec>& specs,
                       const InfraClassifier& classifier,
                       const RuleGenConfig& config) {
  RuleSet out;

  for (const ServiceSpec& spec : specs) {
    unsigned dedicated = 0;
    unsigned with_data = 0;
    DetectionRule rule;
    rule.service = spec.id;
    rule.name = spec.name;
    rule.level = spec.level;
    rule.parent = spec.parent;
    rule.critical_sufficient = spec.critical_sufficient;

    struct Monitored {
      std::uint16_t index;
      std::vector<std::vector<net::IpAddress>> daily_ips;
      std::uint16_t port;
    };
    std::vector<Monitored> monitored;

    for (std::uint16_t i = 0; i < spec.domains.size(); ++i) {
      const ServiceDomain& dom = spec.domains[i];
      if (dom.support) continue;  // support domains inform, never trigger
      const InfraResult result = classifier.classify(dom);
      ++out.stats.domains_total;
      switch (result.cls) {
        case InfraClass::kDedicated:
          ++out.stats.dedicated;
          break;
        case InfraClass::kShared:
          ++out.stats.shared;
          break;
        case InfraClass::kViaCertScan:
          ++out.stats.dnsdb_missing;
          ++out.stats.via_cert_scan;
          break;
        case InfraClass::kNoData:
          ++out.stats.dnsdb_missing;
          ++out.stats.unresolved;
          break;
      }
      if (result.cls == InfraClass::kShared) ++with_data;
      if (result.cls == InfraClass::kDedicated ||
          result.cls == InfraClass::kViaCertScan) {
        ++with_data;
        ++dedicated;
        if (dom.iot_exclusive) {
          monitored.push_back({i, result.daily_ips, dom.port});
        }
      }
    }

    const auto primary_total = static_cast<unsigned>(std::count_if(
        spec.domains.begin(), spec.domains.end(),
        [](const ServiceDomain& d) { return !d.support; }));

    if (with_data == 0) {
      out.excluded.push_back({spec.id, spec.name,
                              ExclusionReason::kInsufficientData, 0,
                              primary_total});
      continue;
    }
    const double dedicated_fraction =
        primary_total == 0 ? 0.0
                           : static_cast<double>(dedicated) /
                                 static_cast<double>(primary_total);
    if (monitored.empty() ||
        dedicated_fraction < config.min_dedicated_fraction) {
      out.excluded.push_back({spec.id, spec.name,
                              ExclusionReason::kSharedBackend, dedicated,
                              primary_total});
      continue;
    }

    // Emit the rule and register the hitlist entries.
    rule.monitored_domains = static_cast<unsigned>(monitored.size());
    for (std::uint16_t m = 0; m < monitored.size(); ++m) {
      const Monitored& mon = monitored[m];
      rule.monitored_indices.push_back(mon.index);
      if (mon.index == spec.critical_index) {
        rule.critical_monitored_index = m;
      }
      for (util::DayBin day = config.first_day; day <= config.last_day;
           ++day) {
        const auto& ips = mon.daily_ips.at(day - config.first_day);
        for (const auto& ip : ips) {
          out.hitlist.add(ip, mon.port, day, {spec.id, m});
        }
      }
    }
    out.rules.push_back(std::move(rule));
  }
  return out;
}

}  // namespace haystack::core
