#include "serve/alerts.hpp"

namespace haystack::serve {

AlertEngine::AlertEngine(AlertConfig config, obs::Observability* obs)
    : config_{config} {
  if (obs != nullptr) {
    recorder_ = &obs->recorder;
    new_detection_counter_ = obs->registry.counter(
        "serve_alerts_total", {{"kind", "new_detection"}});
    degraded_counter_ = obs->registry.counter(
        "serve_alerts_total", {{"kind", "confidence_degraded"}});
    loss_spike_counter_ = obs->registry.counter(
        "serve_alerts_total", {{"kind", "loss_spike"}});
  }
}

void AlertEngine::on_publish(const core::ShardView* prev,
                             const core::ShardView& now) {
  if (prev == nullptr) return;  // no baseline to diff against
  const std::uint32_t source = alert_source(now.shard);

  // satisfied is monotone per shard (cumulative coverage-met transitions),
  // so the delta is exactly the detections that landed in this interval.
  const std::uint64_t fresh = now.satisfied - prev->satisfied;
  if (fresh >= config_.min_new_detections && fresh > 0) {
    new_detection_.fetch_add(1, std::memory_order_relaxed);
    if (new_detection_counter_) new_detection_counter_->add(1);
    if (recorder_ != nullptr) {
      recorder_->record(obs::EventKind::kAlertNewDetection, source, fresh,
                        now.ruleset_version);
    }
  }

  if (!prev->degraded && now.degraded) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
    if (degraded_counter_) degraded_counter_->add(1);
    if (recorder_ != nullptr) {
      recorder_->record(
          obs::EventKind::kAlertConfidenceDegraded, source,
          static_cast<std::uint64_t>(now.observed_loss * 1e6));
    }
  }

  if (now.observed_loss - prev->observed_loss >= config_.loss_spike_delta) {
    loss_spike_.fetch_add(1, std::memory_order_relaxed);
    if (loss_spike_counter_) loss_spike_counter_->add(1);
    if (recorder_ != nullptr) {
      recorder_->record(obs::EventKind::kAlertLossSpike, source,
                        static_cast<std::uint64_t>(now.observed_loss * 1e6),
                        static_cast<std::uint64_t>(prev->observed_loss * 1e6));
    }
  }
}

}  // namespace haystack::serve
