// Bounds-checked big-endian byte stream primitives shared by the NetFlow v9
// and IPFIX codecs. Network byte order throughout.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

namespace haystack::flow {

/// Append-only big-endian encoder over a growable byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Appends `count` zero bytes (set padding).
  void pad(std::size_t count) { buf_.insert(buf_.end(), count, 0); }

  /// Overwrites a previously written big-endian u16 at `offset`; used to
  /// back-patch length fields once a set/flowset is complete.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked big-endian decoder over a read-only byte span.
///
/// Every read reports success via its return value; after any failure the
/// reader is latched into the failed state (ok() == false) and further
/// reads return zeros, so decode loops can defer the error check.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_{data} {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  std::uint8_t u8() noexcept {
    if (!require(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t u16() noexcept {
    if (!require(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() noexcept {
    if (!require(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() noexcept {
    const std::uint64_t hi = u32();
    const std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }

  /// Reads exactly `len` bytes into `out`; on short input fails the reader.
  bool bytes(std::span<std::uint8_t> out) noexcept {
    if (!require(out.size())) return false;
    // An empty span's data() may be null, and memcpy's pointer arguments
    // are nonnull-annotated even for size 0 (UBSan finding: parking a
    // zero-length flowset body).
    if (!out.empty()) {
      std::memcpy(out.data(), data_.data() + pos_, out.size());
      pos_ += out.size();
    }
    return true;
  }

  /// Skips `len` bytes.
  bool skip(std::size_t len) noexcept {
    if (!require(len)) return false;
    pos_ += len;
    return true;
  }

  /// Remaining unread bytes as a span, without consuming them. Empty once
  /// the reader has failed. Batch decode plans execute directly over this.
  [[nodiscard]] std::span<const std::uint8_t> rest() const noexcept {
    return ok_ ? data_.subspan(pos_) : std::span<const std::uint8_t>{};
  }

  /// Returns a sub-reader over the next `len` bytes and consumes them.
  ByteReader slice(std::size_t len) noexcept {
    if (!require(len)) return ByteReader{{}};
    ByteReader sub{data_.subspan(pos_, len)};
    pos_ += len;
    return sub;
  }

 private:
  bool require(std::size_t n) noexcept {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace haystack::flow
