// Structure-of-arrays flow batches and the per-wave arena behind them
// (ISSUE 6 tentpole).
//
// A `FlowBatch` holds the decoded fields of N flow records as parallel
// columns instead of a vector of fat `FlowRecord` structs. Batch decode
// (`Collector::ingest_batch`) appends straight off the datagram into the
// columns via a compiled per-template field-offset plan, and the pipeline
// normalizer reads only the columns it needs (dst IP, dst port, packets),
// never materializing a `FlowRecord` on the fast path.
//
// Column defaults reproduce `FlowRecord`'s member initializers exactly
// (proto = 6, sampling = 1, everything else zero / unspecified address),
// so a batch row round-trips bit-for-bit through `record(i)` against the
// record-at-a-time reference decoder. The differential tier enforces this.
//
// `BatchArena` recycles batch buffers across waves: a stage acquires a
// `Lease` (a unique_ptr whose deleter returns the batch to the pool),
// fills it, and hands it downstream through the bounded queues. The arena
// trims column capacity on release once it exceeds `trim_rows`, so a
// one-off burst — e.g. a FlowCache emergency expiry flushing the whole
// cache into one batch — cannot pin megabytes in the pool forever
// (ISSUE 6 satellite 5).
//
// Lifetime contract: a lease must not outlive its arena. IngestPipeline
// declares the arena before the stage pools, so the pools (and any lease
// still queued) are destroyed first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "flow/record.hpp"
#include "net/ip_address.hpp"

namespace haystack::flow {

/// Decoded flow records in structure-of-arrays layout. All columns have
/// identical length (`size()`); row `i` across the columns reconstructs
/// one `FlowRecord`.
class FlowBatch {
 public:
  // Columns are public by design: decode plans and the pipeline
  // normalizer index them directly.
  std::vector<net::IpAddress> src;
  std::vector<net::IpAddress> dst;
  std::vector<std::uint16_t> src_port;
  std::vector<std::uint16_t> dst_port;
  std::vector<std::uint8_t> proto;
  std::vector<std::uint8_t> tcp_flags;
  std::vector<std::uint64_t> packets;
  std::vector<std::uint64_t> bytes;
  std::vector<std::uint64_t> start_ms;
  std::vector<std::uint64_t> end_ms;
  std::vector<std::uint32_t> sampling;

  [[nodiscard]] std::size_t size() const { return src.size(); }
  [[nodiscard]] bool empty() const { return src.empty(); }

  /// Clears all columns; capacity is retained for reuse.
  void clear();

  /// Reserves room for `rows` records in every column.
  void reserve(std::size_t rows);

  /// Appends one row with `FlowRecord` defaults (proto 6, sampling 1,
  /// zeros elsewhere) and returns its index. Decode plans fill in the
  /// fields the template actually carries.
  std::size_t append_defaults();

  /// Appends a fully materialized record (slow-path / test convenience).
  void push(const FlowRecord& rec);

  /// Reconstructs row `i` as a `FlowRecord`. Bit-identical to what the
  /// record-at-a-time reference decoder would have produced.
  [[nodiscard]] FlowRecord record(std::size_t i) const;

  /// Largest column capacity, in rows — the arena's trim criterion.
  [[nodiscard]] std::size_t capacity_rows() const;

  /// Releases excess capacity in every column (used by the arena trim).
  void shrink_to_fit();
};

/// Pool of reusable `FlowBatch` buffers. Thread-safe; leases may be
/// acquired and released from different stage workers concurrently.
class BatchArena {
 public:
  struct Config {
    /// Max batches kept in the free list; extra releases deallocate.
    std::size_t max_pool = 32;
    /// Column capacity (rows) above which a released batch is trimmed
    /// back before pooling, bounding post-burst memory.
    std::size_t trim_rows = 4096;
  };

  struct Stats {
    std::uint64_t acquired = 0;  ///< total leases handed out
    std::uint64_t reused = 0;    ///< leases served from the pool
    std::uint64_t trimmed = 0;   ///< releases that triggered a capacity trim
    std::size_t pooled = 0;      ///< batches currently in the free list
  };

  class Releaser {
   public:
    Releaser() = default;
    explicit Releaser(BatchArena* arena) : arena_(arena) {}
    void operator()(FlowBatch* batch) const;

   private:
    BatchArena* arena_ = nullptr;
  };

  /// Owning handle to a pooled batch; returns it to the arena on
  /// destruction (or deletes it if the pool is full).
  using Lease = std::unique_ptr<FlowBatch, Releaser>;

  BatchArena() = default;
  explicit BatchArena(Config config) : config_(config) {}
  BatchArena(const BatchArena&) = delete;
  BatchArena& operator=(const BatchArena&) = delete;

  /// Returns an empty batch, reusing pooled capacity when available.
  [[nodiscard]] Lease acquire();

  [[nodiscard]] Stats stats() const;

 private:
  friend class Releaser;
  void release(FlowBatch* batch);

  Config config_{};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<FlowBatch>> free_;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t trimmed_ = 0;
};

}  // namespace haystack::flow
