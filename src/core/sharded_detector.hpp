// Sharded, thread-parallel detector.
//
// The per-flow work is one hash lookup plus a bitset update, so a single
// core already absorbs an ISP's sampled flow volume (see bench/
// perf_pipeline). For headroom — or for replaying weeks of archived flows
// "within minutes" — the detector shards by subscriber: evidence for one
// subscriber lives in exactly one shard, shards share the immutable
// hitlist and rules, and a batch of observations is partitioned and
// processed by one thread per shard with no locks on the hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/detector.hpp"

namespace haystack::core {

/// One flow observation, direction-normalized.
struct Observation {
  SubscriberKey subscriber = 0;
  net::IpAddress server;
  std::uint16_t port = 0;
  std::uint64_t packets = 0;
  util::HourBin hour = 0;
};

/// Detector sharded by subscriber key.
class ShardedDetector {
 public:
  /// `shards` worker partitions (>= 1). Shares `hitlist`/`rules` which must
  /// outlive the detector.
  ShardedDetector(const Hitlist& hitlist, const RuleSet& rules,
                  const DetectorConfig& config, unsigned shards);

  /// Processes a batch: partitions by subscriber shard, then runs every
  /// shard's partition on its own thread. Observations for one subscriber
  /// keep their relative order.
  void process_batch(std::span<const Observation> batch);

  /// Single-observation path (runs inline on the calling thread).
  void observe(const Observation& obs);

  /// Hierarchy-aware detection (delegates to the owning shard).
  [[nodiscard]] bool detected(SubscriberKey subscriber,
                              ServiceId service) const;
  [[nodiscard]] std::optional<util::HourBin> detection_hour(
      SubscriberKey subscriber, ServiceId service) const;

  /// Loss-aware verdict (delegates to the owning shard).
  [[nodiscard]] Verdict verdict(SubscriberKey subscriber,
                                ServiceId service) const;

  /// Propagates the estimated channel loss to every shard.
  void set_observed_loss(double fraction) noexcept;

  /// Checkpoint support: routes the evidence row to its owning shard /
  /// installs the saved totals (in shard 0, so stats() reproduces them).
  void restore_evidence(SubscriberKey subscriber, ServiceId service,
                        const Evidence& evidence);
  void restore_stats(const Detector::Stats& stats);

  /// Visits evidence across all shards (single-threaded).
  void for_each_evidence(
      const std::function<void(SubscriberKey, ServiceId, const Evidence&)>&
          fn) const;

  void clear();

  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  [[nodiscard]] Detector::Stats stats() const;
  /// Shared per-shard configuration.
  [[nodiscard]] const DetectorConfig& config() const noexcept {
    return shards_[0]->config();
  }

 private:
  [[nodiscard]] std::size_t shard_of(SubscriberKey subscriber) const {
    return util::fnv1a_u64(subscriber) % shards_.size();
  }

  std::vector<std::unique_ptr<Detector>> shards_;
};

}  // namespace haystack::core
