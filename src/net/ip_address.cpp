#include "net/ip_address.hpp"

#include <charconv>
#include <cstdio>

namespace haystack::net {

namespace {

// Parses a decimal octet (0..255) from `text` starting at `pos`. On success
// advances pos past the digits and returns the value.
std::optional<std::uint32_t> parse_octet(std::string_view text,
                                         std::size_t& pos) {
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
    return std::nullopt;
  }
  std::uint32_t value = 0;
  std::size_t digits = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<std::uint32_t>(text[pos] - '0');
    ++pos;
    if (++digits > 3 || value > 255) return std::nullopt;
  }
  return value;
}

std::optional<IpAddress> parse_v4(std::string_view text) {
  std::size_t pos = 0;
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i != 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    const auto octet = parse_octet(text, pos);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (pos != text.size()) return std::nullopt;
  return IpAddress::v4(value);
}

std::optional<IpAddress> parse_v6(std::string_view text) {
  // Split on "::" (at most one), then parse 16-bit hex groups.
  std::array<std::uint16_t, 8> groups{};
  std::size_t n_before = 0;
  std::size_t n_after = 0;
  std::array<std::uint16_t, 8> before{};
  std::array<std::uint16_t, 8> after{};
  bool seen_gap = false;

  std::size_t pos = 0;
  auto parse_group = [&](std::uint16_t& out) -> bool {
    std::uint32_t value = 0;
    std::size_t digits = 0;
    while (pos < text.size()) {
      const char c = text[pos];
      std::uint32_t d;
      if (c >= '0' && c <= '9') {
        d = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<std::uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<std::uint32_t>(c - 'A') + 10;
      } else {
        break;
      }
      value = (value << 4) | d;
      ++pos;
      if (++digits > 4) return false;
    }
    if (digits == 0) return false;
    out = static_cast<std::uint16_t>(value);
    return true;
  };

  if (text.starts_with("::")) {
    seen_gap = true;
    pos = 2;
  }
  while (pos < text.size()) {
    std::uint16_t g = 0;
    if (!parse_group(g)) return std::nullopt;
    if (!seen_gap) {
      if (n_before >= 8) return std::nullopt;
      before[n_before++] = g;
    } else {
      if (n_after >= 8) return std::nullopt;
      after[n_after++] = g;
    }
    if (pos == text.size()) break;
    if (text[pos] != ':') return std::nullopt;
    ++pos;
    if (pos < text.size() && text[pos] == ':') {
      if (seen_gap) return std::nullopt;  // second "::"
      seen_gap = true;
      ++pos;
      if (pos == text.size()) break;  // trailing "::"
    } else if (pos == text.size()) {
      return std::nullopt;  // trailing single ':'
    }
  }

  const std::size_t total = n_before + n_after;
  if (seen_gap) {
    if (total >= 8) return std::nullopt;
  } else if (total != 8) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < n_before; ++i) groups[i] = before[i];
  for (std::size_t i = 0; i < n_after; ++i) {
    groups[8 - n_after + i] = after[i];
  }

  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | groups[static_cast<std::size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | groups[static_cast<std::size_t>(i)];
  return IpAddress::v6(hi, lo);
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

std::array<std::uint8_t, 16> IpAddress::bytes() const noexcept {
  std::array<std::uint8_t, 16> out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(hi_ >> (56 - 8 * i));
    out[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(lo_ >> (56 - 8 * i));
  }
  return out;
}

std::string IpAddress::to_string() const {
  char buf[64];
  if (is_v4()) {
    const auto v = v4_value();
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v >> 24) & 0xffU,
                  (v >> 16) & 0xffU, (v >> 8) & 0xffU, v & 0xffU);
    return buf;
  }
  // RFC 5952: compress the leftmost longest run of >=2 zero groups.
  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < 4; ++i) {
    groups[static_cast<std::size_t>(i)] =
        static_cast<std::uint16_t>(hi_ >> (48 - 16 * i));
    groups[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint16_t>(lo_ >> (48 - 16 * i));
  }
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] == 0) {
      int j = i;
      while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
      if (j - i > best_len) {
        best_len = j - i;
        best_start = i;
      }
      i = j;
    } else {
      ++i;
    }
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  out.reserve(45);
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      if (i >= 8) break;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof(buf), "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

}  // namespace haystack::net
