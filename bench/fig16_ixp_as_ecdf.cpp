// Figure 16 reproduction: ECDF of the per-member-AS share of unique IoT
// device IPs at the IXP for one day — a few eyeball ASes carry most of the
// activity; a long tail of members contributes the rest.
#include <iostream>
#include <map>
#include <set>

#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  simnet::IxpConfig config;
  config.eyeball_households = static_cast<std::uint32_t>(
      bench::env_u64("HAYSTACK_IXP_HOUSEHOLDS", 60'000));
  simnet::WildIxpSim ixp{world.backend(), world.rates(), config};

  const auto* alexa = world.catalog().unit_by_name("Alexa Enabled");
  const auto* samsung = world.catalog().unit_by_name("Samsung IoT");

  std::map<net::Asn, std::set<net::IpAddress>> alexa_as, samsung_as,
      other_as;
  ixp.day_observations(0, [&](const simnet::IxpObs& o) {
    if (o.unit == alexa->id) {
      alexa_as[o.member].insert(o.device_ip);
    } else if (o.unit == samsung->id) {
      samsung_as[o.member].insert(o.device_ip);
    } else {
      other_as[o.member].insert(o.device_ip);
    }
  });

  auto print_ecdf = [&](const char* label,
                        const std::map<net::Asn, std::set<net::IpAddress>>&
                            per_as) {
    std::size_t total = 0;
    for (const auto& [asn, ips] : per_as) total += ips.size();
    util::Ecdf ecdf;
    double top_share = 0;
    for (const auto& [asn, ips] : per_as) {
      const double share = 100.0 * double(ips.size()) / double(total);
      ecdf.add(share);
      top_share = std::max(top_share, share);
    }
    ecdf.freeze();
    util::TextTable table;
    table.header({"Per-AS share of unique IPs", "ECDF"});
    for (const double pct : {0.001, 0.01, 0.1, 1.0, 5.0, 10.0, 25.0}) {
      table.row({util::fmt_double(pct, 3) + "%",
                 util::fmt_double(ecdf.fraction_at(pct), 3)});
    }
    util::print_banner(std::cout, std::string{"Figure 16 ECDF: "} + label);
    table.print(std::cout);
    std::cout << "members with activity: " << per_as.size()
              << ", top AS share: " << util::fmt_double(top_share, 1)
              << "% (eyeball)\n";
  };

  print_ecdf("Alexa Enabled", alexa_as);
  print_ecdf("Samsung IoT", samsung_as);
  print_ecdf("Other 32 device types", other_as);
  std::cout << "\nPaper: all three distributions are heavily skewed — a "
               "handful of eyeball member ASes hold most of the IoT "
               "activity, with a long tail across the remaining members.\n";
  return 0;
}
