// Vantage scan: the scenario workflow through the fault-tolerant
// multi-vantage fleet (ISSUE 7). N collectors each detect over their
// slice of the wild ISP traffic and ship compact evidence deltas — over a
// possibly impaired channel — to an aggregator whose commutative,
// idempotent merge reconstructs the single-process evidence map
// bit-for-bit. The merged detection table, delta-channel accounting, and
// (optionally) the run's metrics and flight events are printed.
//
// Usage: vantage_scan <scenario-file> [hours] [--metrics] [--flight N]
//
// Scenario keys shaping the fleet and its delta channel:
//   vantage_collectors 4
//   delta_drop 0.1          delta_duplicate 0.05
//   delta_reorder 0.05      delta_truncate 0.01
//   delta_seed 7            ack_loss 0.1
//   vantage_kill_collector 1
//   vantage_kill_hour 3     vantage_restart_hour 6
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>

#include "obs/flight_recorder.hpp"
#include "pipeline/scenario_runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace haystack;
  if (argc < 2) {
    std::cerr << "usage: vantage_scan <scenario-file> [hours]\n";
    return 2;
  }
  std::ifstream file{argv[1]};
  if (!file) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  std::string error;
  const auto scenario = simnet::parse_scenario(file, &error);
  if (!scenario) {
    std::cerr << "scenario error: " << error << "\n";
    return 2;
  }

  pipeline::VantageReplayConfig config;
  bool show_metrics = false;
  std::size_t flight_tail = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      show_metrics = true;
    } else if (std::strcmp(argv[i], "--flight") == 0) {
      flight_tail = 10;
      if (i + 1 < argc && std::atoi(argv[i + 1]) > 0) {
        flight_tail = static_cast<std::size_t>(std::atoi(argv[++i]));
      }
    } else if (std::atoi(argv[i]) > 0) {
      config.hours = static_cast<unsigned>(std::atoi(argv[i]));
    }
  }
  const auto result =
      pipeline::replay_scenario_vantage(*scenario, config, &error);
  if (!result) {
    std::cerr << "scenario error: " << error << "\n";
    return 2;
  }

  const unsigned collectors = scenario->vantage_collectors.value_or(
      pipeline::VantageReplayConfig{}.collectors);
  std::cout << "Fleet of " << collectors << " collectors over "
            << config.hours << " hours: "
            << util::fmt_count(result->observations) << " observations, "
            << util::fmt_count(result->datagrams) << " delta datagrams ("
            << util::fmt_count(result->delta_bytes) << " bytes, "
            << util::fmt_count(result->retransmissions)
            << " retransmissions)\n";
  const auto& c = result->counters;
  std::cout << "Aggregator: " << util::fmt_count(c.epochs_sealed)
            << " epochs sealed, " << util::fmt_count(c.rows_merged)
            << " rows merged, " << c.duplicates << " duplicates, "
            << c.stale << " stale, " << c.rejected << " rejected, "
            << c.restarts << " restarts";
  if (result->merged_through) {
    std::cout << "; merged through hour " << *result->merged_through;
  }
  std::cout << (result->drained ? "" : " (NOT drained)") << "\n\n";

  util::TextTable table;
  table.header({"Service", "Subscribers detected"});
  for (const auto& [name, count] : result->per_service) {
    table.row({name, util::fmt_count(count)});
  }
  table.print(std::cout);
  std::cout << "\nSubscribers with any IoT activity: "
            << util::fmt_count(result->subscribers_detected) << "\n";

  if (flight_tail > 0) {
    const auto& events = result->flight_events;
    const std::size_t n = std::min(flight_tail, events.size());
    std::cout << "\nFlight recorder (last " << n << " of " << events.size()
              << " events):\n";
    for (std::size_t i = events.size() - n; i < events.size(); ++i) {
      const auto& e = events[i];
      std::cout << "  #" << e.seq << " h" << e.hour << " "
                << obs::event_name(e.kind) << " source=" << e.source
                << " a=" << e.a << " b=" << e.b << "\n";
    }
  }
  if (show_metrics) {
    std::cout << "\n# Prometheus scrape of the run\n"
              << result->metrics_prometheus;
  }
  return 0;
}
