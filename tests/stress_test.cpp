// Concurrency stress/soak suite for the streaming pipeline (ISSUE 3):
// producer/consumer interleavings over the bounded queues, blocking
// backpressure on full queues, shutdown mid-stream, restart-after-drain,
// and the ShardedDetector::observe-concurrent-with-process_batch
// regression. Runs under `ctest -L stress`, and under TSan via
// tests/run_sanitizers.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "core/sharded_detector.hpp"
#include "flow/netflow_v9.hpp"
#include "pipeline/bounded_queue.hpp"
#include "pipeline/ingest.hpp"
#include "pipeline/shard_pool.hpp"
#include "simnet/backend.hpp"
#include "simnet/manual_analysis.hpp"
#include "simnet/population.hpp"
#include "simnet/wild_isp.hpp"

namespace haystack::pipeline {
namespace {

TEST(BoundedQueueStress, BackpressureUnderContention) {
  // Four producers hammer a tiny queue; a slow-ish consumer drains it.
  // Every item must arrive, and the tiny capacity must actually have
  // stalled producers (otherwise the test exercises nothing).
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  BoundedQueue<std::uint64_t> queue{4};

  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push((std::uint64_t{p} << 32) | i));
      }
    });
  }
  std::uint64_t received = 0;
  std::uint64_t sum = 0;
  while (received < kProducers * kPerProducer) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    sum += *item & 0xffffffffu;
    ++received;
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(received, kProducers * kPerProducer);
  EXPECT_EQ(sum, kProducers * (kPerProducer * (kPerProducer - 1) / 2));
  const auto stats = queue.stats();
  EXPECT_EQ(stats.enqueued, kProducers * kPerProducer);
  EXPECT_EQ(stats.dequeued, kProducers * kPerProducer);
  EXPECT_GT(stats.producer_stalls, 0u);
  EXPECT_LE(stats.max_depth, queue.capacity());
}

TEST(BoundedQueueStress, CloseMidStreamDrainsWithoutDeadlock) {
  // close() while producers are blocked on a full queue: everyone must
  // wake, refused pushes must report false, and the consumer must still
  // drain every item that was accepted — enqueued == dequeued, no loss.
  BoundedQueue<int> queue{2};
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        if (!queue.push(i)) return;  // closed under us
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::uint64_t drained = 0;
  std::vector<int> wave;
  for (int rounds = 0; rounds < 50; ++rounds) {
    wave.clear();
    drained += queue.pop_wave(wave, 16);
  }
  queue.close();
  for (;;) {
    wave.clear();
    const std::size_t n = queue.pop_wave(wave, 16);
    if (n == 0) break;
    drained += n;
  }
  for (auto& t : producers) t.join();

  // A push may have been counted as accepted concurrently with the final
  // drain only if it landed in the queue, so totals must reconcile.
  EXPECT_EQ(drained, accepted.load());
  const auto stats = queue.stats();
  EXPECT_EQ(stats.enqueued, stats.dequeued);
  EXPECT_FALSE(queue.push(1));  // stays closed
}

TEST(ShardPoolStress, DrainIsAQuiescenceBarrier) {
  constexpr unsigned kShards = 4;
  std::array<std::atomic<std::uint64_t>, kShards> handled{};
  ShardPool<std::uint64_t> pool{
      {.shards = kShards, .queue_capacity = 8, .max_wave = 16},
      [&](unsigned shard, std::vector<std::uint64_t>& wave) {
        handled[shard].fetch_add(wave.size(), std::memory_order_relaxed);
      }};

  std::vector<std::thread> producers;
  std::atomic<std::uint64_t> submitted{0};
  for (unsigned p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < 4000; ++i) {
        ASSERT_TRUE(pool.submit((p + i) % kShards, i));
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.drain();
  std::uint64_t total = 0;
  for (const auto& h : handled) total += h.load();
  EXPECT_EQ(total, submitted.load());
  EXPECT_EQ(total, 3u * 4000u);
  // Idle drain returns immediately.
  pool.drain();
  pool.drain();
}

TEST(ShardPoolStress, RestartAfterDrainAccumulates) {
  std::atomic<std::uint64_t> handled{0};
  ShardPool<int> pool{{.shards = 2, .queue_capacity = 4, .max_wave = 8},
                      [&](unsigned, std::vector<int>& wave) {
                        handled.fetch_add(wave.size(),
                                          std::memory_order_relaxed);
                      }};
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(pool.submit(i % 2, i));
  pool.stop();
  EXPECT_FALSE(pool.running());
  EXPECT_EQ(handled.load(), 100u);       // stop() drains pending items
  EXPECT_FALSE(pool.submit(0, 1));       // refused while stopped

  pool.start();
  EXPECT_TRUE(pool.running());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(pool.submit(i % 2, i));
  pool.drain();
  EXPECT_EQ(handled.load(), 150u);       // totals accumulate across restart
  const auto stats = pool.stats_total();
  EXPECT_EQ(stats.enqueued, 150u);
  EXPECT_EQ(stats.dequeued, 150u);
}

class PipelineStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new simnet::Catalog();
    backend_ = new simnet::Backend(*catalog_, simnet::BackendConfig{});
    rules_ = new core::RuleSet(simnet::build_ruleset(*backend_));

    simnet::Population population{*catalog_, {.lines = 5'000}};
    simnet::DomainRateModel rates{*catalog_, 7};
    simnet::WildIspSim wild{*backend_, population, rates,
                            simnet::WildIspConfig{}};
    batch_ = new std::vector<core::Observation>();
    for (util::HourBin h = 0; h < 6; ++h) {
      wild.hour_observations(h, [&](const simnet::WildObs& o) {
        batch_->push_back({o.line, o.flow.key.dst, o.flow.key.dst_port,
                           o.flow.packets, h});
      });
    }
    ASSERT_GT(batch_->size(), 1000u);
  }
  static void TearDownTestSuite() {
    delete batch_;
    delete rules_;
    delete backend_;
    delete catalog_;
  }

  static simnet::Catalog* catalog_;
  static simnet::Backend* backend_;
  static core::RuleSet* rules_;
  static std::vector<core::Observation>* batch_;
};

simnet::Catalog* PipelineStressTest::catalog_ = nullptr;
simnet::Backend* PipelineStressTest::backend_ = nullptr;
core::RuleSet* PipelineStressTest::rules_ = nullptr;
std::vector<core::Observation>* PipelineStressTest::batch_ = nullptr;

using EvidenceRow =
    std::tuple<core::SubscriberKey, core::ServiceId, std::uint64_t,
               std::uint64_t, std::uint16_t, std::uint64_t, util::HourBin,
               util::HourBin>;

std::vector<EvidenceRow> snapshot(const core::ShardedDetector& det) {
  std::vector<EvidenceRow> rows;
  det.for_each_evidence([&](core::SubscriberKey s, core::ServiceId sv,
                            const core::Evidence& ev) {
    rows.emplace_back(s, sv, ev.mask(0), ev.mask(1), ev.distinct(), ev.packets(),
                      ev.first_seen(), ev.satisfied_hour());
  });
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Regression (ISSUE 3 satellite): observe() used to mutate shard state on
// the calling thread, racing with process_batch workers. It now routes
// through the owning shard's queue, so concurrent producers with disjoint
// subscriber spaces plus a batching main thread must land in exactly the
// state of a sequential replay.
TEST_F(PipelineStressTest, ShardedDetectorConcurrentObserveAndBatch) {
  constexpr unsigned kProducers = 3;
  // Disjoint subscriber spaces: producer p streams subscribers where
  // line % (kProducers + 1) == p; the main thread batches the rest.
  std::vector<std::vector<core::Observation>> streams(kProducers);
  std::vector<core::Observation> main_batch;
  for (const auto& obs : *batch_) {
    const auto lane = obs.subscriber % (kProducers + 1);
    if (lane < kProducers) {
      streams[lane].push_back(obs);
    } else {
      main_batch.push_back(obs);
    }
  }

  core::ShardedDetector det{rules_->hitlist, *rules_, {.threshold = 0.4}, 4,
                            /*queue_capacity=*/8};
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&det, &streams, p] {
      for (const auto& obs : streams[p]) det.observe(obs);
    });
  }
  // Concurrent batching through the same pool, tiny queues → real
  // backpressure interleavings.
  const std::size_t half = main_batch.size() / 2;
  det.process_batch(std::span{main_batch}.first(half));
  det.process_batch(std::span{main_batch}.subspan(half));
  for (auto& t : producers) t.join();

  EXPECT_EQ(det.stats().flows, batch_->size());

  // Sequential reference: same per-producer streams, one after another.
  core::ShardedDetector ref{rules_->hitlist, *rules_, {.threshold = 0.4}, 1};
  for (const auto& stream : streams) {
    for (const auto& obs : stream) ref.observe(obs);
  }
  ref.process_batch(main_batch);
  EXPECT_EQ(snapshot(det), snapshot(ref));
}

TEST_F(PipelineStressTest, IngestShutdownMidStreamNoDeadlock) {
  IngestConfig cfg;
  cfg.shards = 2;
  cfg.queue_capacity = 4;  // tiny: shutdown lands while producers block
  IngestPipeline pipe{rules_->hitlist, *rules_, cfg};

  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = p; i < batch_->size(); i += 3) {
        if (!pipe.push_observations({(*batch_)[i]})) return;
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let some traffic through, then pull the plug mid-stream.
  while (accepted.load(std::memory_order_relaxed) < 100) {
    std::this_thread::yield();
  }
  pipe.shutdown();
  for (auto& t : producers) t.join();

  // Everything accepted before the close is in the evidence map; nothing
  // was lost or double-applied. (Acceptance races the close flag, so the
  // detector may hold slightly more than `accepted` saw — never less.)
  const auto flows = pipe.detector().stats().flows;
  EXPECT_GE(flows, 100u);
  EXPECT_GE(flows, accepted.load());
  EXPECT_LE(flows, batch_->size());
  EXPECT_FALSE(pipe.push_observations({(*batch_)[0]}));
  pipe.shutdown();  // idempotent
}

TEST_F(PipelineStressTest, TinyCapacityDatagramSoak) {
  // Full wire path with every queue at capacity 1: the slowest possible
  // configuration exercises producer/consumer stalls at each stage while
  // remaining lossless end to end.
  IngestConfig cfg;
  cfg.shards = 3;
  cfg.queue_capacity = 1;
  cfg.max_wave = 1;
  IngestPipeline pipe{rules_->hitlist, *rules_, cfg};

  flow::nf9::Exporter exporter{{.source_id = 7}};
  std::vector<flow::FlowRecord> hour_records;
  std::uint64_t flows_sent = 0;
  for (util::HourBin h = 0; h < 3; ++h) {
    hour_records.clear();
    for (std::size_t i = h; i < batch_->size() && hour_records.size() < 400;
         i += 7) {
      const auto& obs = (*batch_)[i];
      flow::FlowRecord rec;
      rec.key.src = net::IpAddress::v4(0x0a000000u |
                                       static_cast<std::uint32_t>(
                                           obs.subscriber & 0xffffffu));
      rec.key.dst = obs.server;
      rec.key.src_port = 40'000;
      rec.key.dst_port = obs.port;
      rec.packets = obs.packets;
      rec.bytes = obs.packets * 64;
      rec.start_ms = h * 3'600'000ULL;
      rec.end_ms = rec.start_ms + 1000;
      rec.sampling = 1;
      hour_records.push_back(rec);
    }
    flows_sent += hour_records.size();
    for (auto& packet :
         exporter.export_flows(hour_records, 1574000000U + h * 3600U)) {
      ASSERT_TRUE(pipe.push_datagram(std::move(packet), h));
    }
  }
  pipe.drain();
  const auto mid = pipe.stats();
  EXPECT_EQ(mid.flows_decoded, flows_sent);
  pipe.shutdown();

  const auto stats = pipe.stats();
  EXPECT_GT(stats.datagrams, 0u);
  EXPECT_EQ(stats.malformed_datagrams, 0u);
  EXPECT_EQ(stats.flows_decoded, flows_sent);
  EXPECT_EQ(stats.observations, flows_sent);
  EXPECT_EQ(pipe.detector().stats().flows, flows_sent);
  // Capacity-1 queues must have produced real backpressure somewhere.
  EXPECT_GT(stats.decode.producer_stalls + stats.normalize.producer_stalls +
                stats.detect.producer_stalls,
            0u);
}

// ---------------------------------------------------------------------------
// ISSUE 6 satellite 2: intern-table concurrency. intern() and
// find()/name() may race from any number of threads; handles handed out
// must be dense, stable, and agreed-on by every thread. Under
// HAYSTACK_SANITIZE=thread this is the designated intern-vs-lookup
// workload.
TEST(InternTableStress, ConcurrentInternAndLookupAgree) {
  core::InternTable table;
  constexpr unsigned kThreads = 4;
  // Prime, so every per-thread odd stride below is coprime with it and
  // each thread visits the full name universe.
  constexpr std::uint32_t kNames = 2999;

  const auto name_of = [](std::uint32_t i) {
    return "domain-" + std::to_string(i) + ".example";
  };

  // Each thread interns the same universe in a different order while also
  // looking up names other threads may be mid-intern on; every thread
  // records the handle it observed for each name.
  std::vector<std::vector<std::uint32_t>> seen(
      kThreads, std::vector<std::uint32_t>(kNames, core::InternTable::kInvalid));
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kNames; ++i) {
        // Stride by a per-thread odd step so threads collide on names
        // mid-intern rather than marching in lockstep.
        const std::uint32_t idx =
            (i * (2 * t + 3) + t * 101) % kNames;
        const std::string n = name_of(idx);
        const std::uint32_t h = table.intern(n);
        seen[t][idx] = h;
        // Lookup of a possibly-concurrent intern: either absent or the
        // same handle every other thread gets; name() must round-trip.
        const std::uint32_t found = table.find(name_of((idx + 1) % kNames));
        if (found != core::InternTable::kInvalid) {
          EXPECT_EQ(table.name(found), name_of((idx + 1) % kNames));
        }
        EXPECT_EQ(table.name(h), n);
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_EQ(table.size(), kNames);
  for (std::uint32_t i = 0; i < kNames; ++i) {
    const std::uint32_t h = table.find(name_of(i));
    ASSERT_NE(h, core::InternTable::kInvalid);
    ASSERT_LT(h, kNames);
    for (unsigned t = 0; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][i], h) << "thread " << t << " name " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// ISSUE 6 satellite 5: FlowCache emergency expiry × arena-backed batches.
// An emergency expiry dumps the whole cache into the currently leased
// batch; the rows must be value copies (no references into cache memory —
// ASan would flag a dangling read below), and the arena must trim the
// ballooned capacity on release instead of pooling it forever.
TEST(FlowCacheArenaStress, EmergencyExpiryRowsOutliveCacheAndArenaTrims) {
  flow::BatchArena arena{{.max_pool = 4, .trim_rows = 64}};
  constexpr std::size_t kMaxEntries = 128;

  flow::BatchArena::Lease burst = arena.acquire();
  {
    flow::FlowCache cache{{.active_timeout_ms = 60'000,
                           .idle_timeout_ms = 15'000,
                           .max_entries = kMaxEntries}};
    // Distinct keys, same timestamp: nothing times out, so the cache
    // grows until the emergency bound flushes it wholesale.
    for (std::uint32_t i = 0; i < 4 * kMaxEntries; ++i) {
      flow::PacketEvent ev;
      ev.key.src = net::IpAddress::v4(0x0A000000U + i);
      ev.key.dst = net::IpAddress::v4(0x22000000U + i);
      ev.key.src_port = static_cast<std::uint16_t>(1024 + (i % 50000));
      ev.key.dst_port = 443;
      ev.key.proto = 6;
      ev.bytes = 100 + i;
      ev.timestamp_ms = 1000;
      cache.add(ev, *burst);
    }
    EXPECT_GT(cache.emergency_expiries(), 0u);
    EXPECT_GT(burst->size(), kMaxEntries);
    // The cache dies here; the batch rows must remain fully readable.
  }
  std::uint64_t total_bytes = 0;
  for (std::size_t i = 0; i < burst->size(); ++i) {
    total_bytes += burst->record(i).bytes;
  }
  EXPECT_GT(total_bytes, 0u);

  const std::size_t burst_capacity = burst->capacity_rows();
  EXPECT_GT(burst_capacity, 64u);
  burst.reset();  // release: capacity above trim_rows must be trimmed

  EXPECT_GT(arena.stats().trimmed, 0u);
  flow::BatchArena::Lease reused = arena.acquire();
  EXPECT_GT(arena.stats().reused, 0u);
  EXPECT_LE(reused->capacity_rows(), 64u);
}

// Pipeline-level soak of the same interaction (stress label, TSan/ASan):
// a tiny metering cache forces emergency expiries while concurrent
// producers keep pushing packets; packet conservation through the cache
// must survive the burst flushes, and every expired row must flow through
// the normalize stage without referencing freed cache state.
TEST(FlowCacheArenaStress, PipelineEmergencyExpirySoakConservesPackets) {
  IngestConfig cfg;
  cfg.shards = 2;
  cfg.queue_capacity = 8;
  cfg.metering.max_entries = 64;
  cfg.metering.active_timeout_ms = 5'000;
  cfg.metering.idle_timeout_ms = 1'000;
  const auto rules = [] {
    core::RuleSet rs;
    core::DetectionRule rule;
    rule.service = 0;
    rule.name = "svc";
    rule.level = core::Level::kManufacturer;
    rule.monitored_domains = 4;
    for (std::uint16_t m = 0; m < 4; ++m) {
      rule.monitored_indices.push_back(m);
      for (util::DayBin d = 0; d < 3; ++d) {
        rs.hitlist.add(net::IpAddress::v4(0x22000000U + m), 443, d,
                       {0, m});
      }
    }
    rs.rules.push_back(std::move(rule));
    return rs;
  }();
  IngestPipeline pipe{rules.hitlist, rules, cfg};

  constexpr unsigned kProducers = 3;
  constexpr std::uint32_t kPacketsPerProducer = 3000;
  std::vector<std::thread> producers;
  for (unsigned t = 0; t < kProducers; ++t) {
    producers.emplace_back([&pipe, t] {
      for (std::uint32_t i = 0; i < kPacketsPerProducer; ++i) {
        flow::PacketEvent ev;
        // Mostly-distinct keys keep the tiny cache at its emergency
        // bound; a sliver of hitlist-bound traffic exercises detection
        // on the expired rows.
        ev.key.src = net::IpAddress::v4(0x0A000000U + t * 1'000'000 + i);
        ev.key.dst = i % 16 == 0
                         ? net::IpAddress::v4(0x22000000U + (i % 4))
                         : net::IpAddress::v4(0x33000000U + i);
        ev.key.src_port = 40000;
        ev.key.dst_port = 443;
        ev.key.proto = 6;
        ev.bytes = 64;
        ev.timestamp_ms = 1000 + i;
        if (!pipe.push_packet(ev, 1)) break;
      }
    });
  }
  for (auto& p : producers) p.join();
  pipe.drain();
  pipe.shutdown();

  const auto stats = pipe.stats();
  EXPECT_EQ(stats.packets_metered, kProducers * kPacketsPerProducer);
  EXPECT_GT(stats.emergency_expiries, 0u);
  // Conservation: after shutdown's cache flush, every metered packet is
  // accounted for in the expired flows.
  EXPECT_EQ(stats.metered_packets_out, stats.packets_metered);
  const auto check = pipe.self_check();
  EXPECT_TRUE(check.ok) << check.detail;
}

}  // namespace
}  // namespace haystack::pipeline
