#include "core/rule_export.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace haystack::core {

namespace {

const char* level_token(Level level) {
  switch (level) {
    case Level::kPlatform:
      return "platform";
    case Level::kManufacturer:
      return "manufacturer";
    case Level::kProduct:
      return "product";
  }
  return "?";
}

std::optional<Level> parse_level(const std::string& token) {
  if (token == "platform") return Level::kPlatform;
  if (token == "manufacturer") return Level::kManufacturer;
  if (token == "product") return Level::kProduct;
  return std::nullopt;
}

const char* reason_token(ExclusionReason reason) {
  return reason == ExclusionReason::kSharedBackend ? "shared" : "nodata";
}

}  // namespace

void export_rules(const RuleSet& rules, std::ostream& os) {
  os << "# haystack rule set v1\n";
  for (const auto& rule : rules.rules) {
    os << "rule\t" << rule.service << '\t' << level_token(rule.level) << '\t'
       << rule.monitored_domains << '\t';
    if (rule.parent) {
      os << *rule.parent;
    } else {
      os << '-';
    }
    os << '\t';
    if (rule.critical_monitored_index) {
      os << *rule.critical_monitored_index;
    } else {
      os << '-';
    }
    os << '\t' << (rule.critical_sufficient ? 1 : 0) << '\t' << rule.name
       << '\n';
    for (std::size_t m = 0; m < rule.monitored_indices.size(); ++m) {
      os << "mon\t" << rule.service << '\t' << m << '\t'
         << rule.monitored_indices[m] << '\n';
    }
  }
  for (const auto& excluded : rules.excluded) {
    os << "excl\t" << excluded.service << '\t'
       << reason_token(excluded.reason) << '\t' << excluded.dedicated_domains
       << '\t' << excluded.total_domains << '\t' << excluded.name << '\n';
  }
  // Hitlist last: the bulk of the data.
  rules.hitlist.for_each([&os](util::DayBin day, const net::IpAddress& ip,
                               std::uint16_t port, const Hit& hit) {
    os << "hit\t" << day << '\t' << ip.to_string() << '\t' << port << '\t'
       << hit.service << '\t' << hit.domain_index << '\n';
  });
}

std::optional<RuleSet> import_rules(std::istream& is, std::string* error) {
  RuleSet out;
  std::string line;
  std::size_t line_no = 0;

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields{line};
    std::string kind;
    fields >> kind;

    auto syntax_error = [&](const char* what) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + what;
      }
      return std::nullopt;
    };

    if (kind == "rule") {
      DetectionRule rule;
      std::string level_str, parent_str, critical_str;
      int crit_suff = 0;
      if (!(fields >> rule.service >> level_str >> rule.monitored_domains >>
            parent_str >> critical_str >> crit_suff)) {
        return syntax_error("bad rule record");
      }
      const auto level = parse_level(level_str);
      if (!level) return syntax_error("bad level");
      rule.level = *level;
      if (parent_str != "-") {
        rule.parent =
            static_cast<ServiceId>(std::stoul(parent_str));
      }
      if (critical_str != "-") {
        rule.critical_monitored_index =
            static_cast<std::uint16_t>(std::stoul(critical_str));
      }
      rule.critical_sufficient = crit_suff != 0;
      std::getline(fields, rule.name);
      if (!rule.name.empty() && rule.name.front() == '\t') {
        rule.name.erase(0, 1);
      }
      if (rule.name.empty()) return syntax_error("missing rule name");
      out.rules.push_back(std::move(rule));
    } else if (kind == "mon") {
      ServiceId service = 0;
      std::size_t pos = 0;
      std::uint16_t index = 0;
      if (!(fields >> service >> pos >> index)) {
        return syntax_error("bad mon record");
      }
      DetectionRule* rule = nullptr;
      for (auto& r : out.rules) {
        if (r.service == service) rule = &r;
      }
      if (rule == nullptr) return syntax_error("mon before rule");
      if (pos != rule->monitored_indices.size()) {
        return syntax_error("mon out of order");
      }
      rule->monitored_indices.push_back(index);
    } else if (kind == "hit") {
      util::DayBin day = 0;
      std::string ip_str;
      std::uint16_t port = 0;
      Hit hit;
      if (!(fields >> day >> ip_str >> port >> hit.service >>
            hit.domain_index)) {
        return syntax_error("bad hit record");
      }
      const auto ip = net::IpAddress::parse(ip_str);
      if (!ip || day >= util::kStudyDays) {
        return syntax_error("bad hit address/day");
      }
      out.hitlist.add(*ip, port, day, hit);
    } else if (kind == "excl") {
      ExcludedService excluded;
      std::string reason;
      if (!(fields >> excluded.service >> reason >>
            excluded.dedicated_domains >> excluded.total_domains)) {
        return syntax_error("bad excl record");
      }
      excluded.reason = reason == "shared"
                            ? ExclusionReason::kSharedBackend
                            : ExclusionReason::kInsufficientData;
      std::getline(fields, excluded.name);
      if (!excluded.name.empty() && excluded.name.front() == '\t') {
        excluded.name.erase(0, 1);
      }
      out.excluded.push_back(std::move(excluded));
    } else {
      return syntax_error("unknown record kind");
    }
  }
  return out;
}

}  // namespace haystack::core
