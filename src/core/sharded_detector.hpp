// Sharded, thread-parallel detector with a persistent worker pool and an
// epoch-published read side (ISSUE 8).
//
// The per-flow work is one hash lookup plus a bitset update, so a single
// core already absorbs an ISP's sampled flow volume (see bench/
// perf_pipeline). For headroom — or for replaying weeks of archived flows
// "within minutes" — the detector shards by subscriber: evidence for one
// subscriber lives in exactly one shard, shards share the immutable
// compiled rule version, and each shard owns a long-lived worker thread
// consuming its own bounded queue of observation chunks
// (pipeline::ShardPool). Batches stream through persistent workers
// instead of spawning threads per batch, enqueue_batch() lets an upstream
// pipeline stage keep feeding without a barrier, and blocking
// backpressure bounds memory when producers outrun the shards.
//
// Ordering contract: observations for one subscriber always route to the
// same shard queue (FIFO, single consumer), so per-subscriber relative
// order — and therefore the evidence bits — is identical to a sequential
// replay, for any shard count, queue capacity, or batching.
//
// Read side (ISSUE 8): reads no longer drain the whole pipeline. Each
// worker publishes immutable ShardViews into a ViewHub at wave
// boundaries; live_views() grabs them wait-free, and fresh_view() rides a
// publish token through the owning shard's queue so the returned view
// covers everything enqueued before the call — the same visibility the
// old drain-on-read contract gave, without quiescing any other shard or
// blocking producers. The synchronous accessors (detected/verdict/
// detection_hour/stats/for_each_evidence) now route through fresh views;
// their old behavior — an implicit full drain() of every shard queue on
// every read — is deprecated and gone. drain() itself remains for
// process_batch() and pipeline shutdown barriers.
//
// Rule hot-reload (ISSUE 8): reload_rules() compiles the next
// CompiledRuleVersion off the hot path (new SignatureIndex, InternTable
// deltas appended — the table is thread-safe and handles are stable),
// then atomically swaps the producer-side current version. Chunks are
// tagged with the version current at submit time, so each chunk is
// applied under exactly one version, per-shard applied versions are
// monotone (in-flight waves finish on the old version, the cutover token
// then flips the shard), and producers never stall.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/detector.hpp"
#include "core/intern.hpp"
#include "core/read_view.hpp"
#include "core/signature_index.hpp"
#include "obs/observability.hpp"
#include "pipeline/shard_pool.hpp"
#include "util/shared_slot.hpp"

namespace haystack::core {

/// One flow observation, direction-normalized.
struct Observation {
  SubscriberKey subscriber = 0;
  net::IpAddress server;
  std::uint16_t port = 0;
  std::uint64_t packets = 0;
  util::HourBin hour = 0;
};

/// One boundary-interned observation (ISSUE 6): the hitlist lookup is
/// already folded into a packed Signature, so shard queues carry 24-byte
/// POD items and workers never touch an IP address or a string. Producers
/// resolve `sig` with `current_version()->index->sig_of(server, port,
/// util::day_of(hour))`; kNoSig rides through and counts as a miss.
struct InternedObs {
  SubscriberKey subscriber = 0;
  std::uint64_t packets = 0;
  Signature sig = kNoSig;
  util::HourBin hour = 0;
};

/// Stable shard routing: evidence for one subscriber lives in exactly one
/// of `shards` partitions. Two-multiply avalanche (the murmur3 finalizer)
/// followed by a Lemire multiply-shift range mapping — no integer divide.
/// Shared with the serve-layer snapshots so a multi-shard snapshot routes
/// per-subscriber queries to the same view the worker published.
[[nodiscard]] inline std::size_t shard_of_key(SubscriberKey subscriber,
                                              std::size_t shards) noexcept {
  std::uint64_t h = subscriber;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<std::size_t>((static_cast<unsigned __int128>(h) *
                                   static_cast<unsigned __int128>(shards)) >>
                                  64U);
}

/// Detector sharded by subscriber key.
class ShardedDetector {
 public:
  /// Called by the owning worker right after a view publication; `prev`
  /// is the view that was replaced (the construction-time empty view for
  /// a shard's first publish — never null). The serve-layer AlertEngine
  /// hangs off this. Runs on the shard worker thread; must not call any
  /// read/drain API of this detector.
  using PublishHook =
      std::function<void(const ShardView* prev, const ShardView& now)>;

  /// `shards` worker partitions (>= 1), each with its own bounded chunk
  /// queue of `queue_capacity` entries. Shares `hitlist`/`rules` which
  /// must outlive the detector (or its first reload_rules()). When `obs`
  /// is non-null, each shard gets per-shard registry instruments (labels
  /// {{"shard", N}}) including its own detect-stage wave histograms, and
  /// the shard pool records backpressure/slow-wave flight events.
  ShardedDetector(const Hitlist& hitlist, const RuleSet& rules,
                  const DetectorConfig& config, unsigned shards,
                  std::size_t queue_capacity = 1024,
                  obs::Observability* obs = nullptr,
                  SnapshotPolicy snapshots = {});
  ~ShardedDetector();

  ShardedDetector(const ShardedDetector&) = delete;
  ShardedDetector& operator=(const ShardedDetector&) = delete;

  /// Processes a batch synchronously: partitions by subscriber shard,
  /// enqueues one chunk per shard, and waits for quiescence. Observations
  /// for one subscriber keep their relative order.
  void process_batch(std::span<const Observation> batch);

  /// Streaming path: like process_batch but without the barrier — the
  /// caller may keep enqueueing while shard workers consume. Blocks only
  /// when a shard queue is full (backpressure).
  void enqueue_batch(std::span<const Observation> batch);

  /// Streaming path for observations whose hitlist lookup was already
  /// resolved at the decode boundary (pipeline fast path). Identical
  /// semantics to enqueue_batch on the equivalent Observation stream.
  void enqueue_interned(std::span<const InternedObs> batch);

  /// Single-observation path, routed through the owning shard's queue —
  /// safe to call concurrently with process_batch/enqueue_batch from any
  /// thread. Applied by the time any read API returns.
  void observe(const Observation& obs);

  /// Quiescence barrier: returns once everything enqueued before the call
  /// has been applied. Retained for process_batch() and topological
  /// pipeline shutdown; read APIs no longer call this (they ride publish
  /// tokens through the owning shard only).
  void drain() const;

  // --- epoch-published read side (ISSUE 8) --------------------------------

  /// Wait-free point-in-time views, one per shard, each prefix-consistent
  /// at its own published epoch. Never blocks, never drains, safe under
  /// full ingest from any thread.
  [[nodiscard]] std::vector<std::shared_ptr<const ShardView>> live_views()
      const {
    return hub_.views();
  }
  [[nodiscard]] std::shared_ptr<const ShardView> live_view(
      unsigned shard) const {
    return hub_.view(shard);
  }

  /// Publishes-and-returns a view of one shard covering everything
  /// enqueued before the call: flushes that shard's coalescing buffer,
  /// rides a publish token through its queue, and waits for the resulting
  /// epoch. Blocks only on that one shard's backlog — other shards and
  /// all producers keep running. Must not be called from a shard worker.
  [[nodiscard]] std::shared_ptr<const ShardView> fresh_view(
      unsigned shard) const;

  /// fresh_view over every shard (tokens submitted first, then awaited,
  /// so shards refresh concurrently).
  [[nodiscard]] std::vector<std::shared_ptr<const ShardView>> fresh_views()
      const;

  [[nodiscard]] const ViewHub& view_hub() const noexcept { return hub_; }

  /// Shard owning a subscriber's evidence (stable for the detector's
  /// lifetime).
  [[nodiscard]] unsigned owner_shard(SubscriberKey subscriber) const {
    return static_cast<unsigned>(shard_of(subscriber));
  }

  /// Wiring-time hook; set before observations flow (not synchronized
  /// against running workers).
  void set_publish_hook(PublishHook hook) { publish_hook_ = std::move(hook); }

  // --- rule hot-reload (ISSUE 8) ------------------------------------------

  /// Compiles `rules` + `config` into the next version and cuts over:
  /// observations enqueued before the call finish under the old version,
  /// everything after applies under the new one, producers never stall.
  /// Each shard republishes its view on cutover, so a subsequent
  /// snapshot/fresh_view reports the new ruleset_version even with no
  /// traffic. Admin path: one reload at a time (concurrent reloads are
  /// serialized by version id; the highest id wins the producer side).
  /// Returns the new version id.
  std::uint64_t reload_rules(std::shared_ptr<const RuleSet> rules,
                             const DetectorConfig& config);

  /// The compiled version new observations are interned/tagged under.
  [[nodiscard]] std::shared_ptr<const CompiledRuleVersion> current_version()
      const {
    return version_.load();
  }

  /// Chunks whose tagged version id regressed below the shard's active
  /// version (always 0: producers tag under the same mutex the reload
  /// swaps under; the serve soak asserts it stays 0).
  [[nodiscard]] std::uint64_t cutover_regressions() const noexcept {
    return cutover_regressions_.load(std::memory_order_relaxed);
  }

  // --- detection reads (route through the snapshot layer) -----------------

  /// Hierarchy-aware detection. Served from a fresh view of the owning
  /// shard — covers everything enqueued before the call; no other shard
  /// is touched. (The pre-ISSUE-8 behavior — an implicit full drain() on
  /// every read — is deprecated and removed.)
  [[nodiscard]] bool detected(SubscriberKey subscriber,
                              ServiceId service) const;
  [[nodiscard]] std::optional<util::HourBin> detection_hour(
      SubscriberKey subscriber, ServiceId service) const;

  /// Loss-aware verdict, tagged with the view's ruleset_version.
  [[nodiscard]] Verdict verdict(SubscriberKey subscriber,
                                ServiceId service) const;

  /// Propagates the estimated channel loss to every shard. Quiesces the
  /// shard queues first (write path; loss transitions are rare).
  void set_observed_loss(double fraction) noexcept;

  /// Checkpoint support: routes the evidence row to its owning shard /
  /// installs the saved totals (in shard 0, so stats() reproduces them).
  /// Not safe concurrently with producers (restore is a cold path).
  void restore_evidence(SubscriberKey subscriber, ServiceId service,
                        const Evidence& evidence);
  void restore_stats(const Detector::Stats& stats);

  /// Visits evidence across all shards (single-threaded) over fresh
  /// views, shard-major in shard order.
  void for_each_evidence(
      const std::function<void(SubscriberKey, ServiceId, const Evidence&)>&
          fn) const;

  void clear();

  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  /// Aggregated throughput counters from fresh views of every shard.
  [[nodiscard]] Detector::Stats stats() const;
  /// Current version's configuration (by value: the version may be
  /// superseded by a concurrent reload).
  [[nodiscard]] DetectorConfig config() const noexcept {
    return current_version()->config;
  }
  /// Current version's rule set (checkpoint code resolves rule names
  /// through it). Do not hold the reference across reload_rules().
  [[nodiscard]] const RuleSet& rules() const noexcept {
    return *current_version()->rules;
  }

  /// Per-shard ingest-queue telemetry (depth/throughput/stalls).
  [[nodiscard]] telemetry::StageStats shard_queue_stats(
      unsigned shard) const;

  /// The current version's precompiled (IP, port, day) -> Signature
  /// index. The reference is invalidated by the next reload_rules();
  /// streaming producers should hold current_version() per wave instead.
  [[nodiscard]] const SignatureIndex& signature_index() const noexcept {
    return *current_version()->index;
  }

  /// Rule-name / monitored-domain-label intern table populated by the
  /// signature-index builds (HSCK v2 keys evidence rows through it).
  /// Append-only across reloads: handles stay stable, deltas are
  /// interned without stalling producers (the table is thread-safe).
  [[nodiscard]] const InternTable& intern_table() const noexcept {
    return intern_;
  }
  [[nodiscard]] InternTable& intern_table() noexcept { return intern_; }

 private:
  /// One shard-queue item: a run of interned observations applied under
  /// exactly one compiled rule version, plus an optional publish request
  /// (empty-item chunks are pure tokens).
  struct Chunk {
    std::shared_ptr<const CompiledRuleVersion> version;
    std::vector<InternedObs> items;
    bool publish = false;
  };

  /// Producer-side coalescing bound (ISSUE 6): enqueue paths append into
  /// per-shard pending buffers under `pending_mu_` and submit a chunk
  /// only once it holds this many observations (or at the next
  /// drain/flush/token). Queue and worker-wakeup traffic then scales with
  /// flushes instead of with producer chunk boundaries. Per-subscriber
  /// FIFO is unaffected: appends are totally ordered by the mutex and a
  /// flush preserves append order.
  static constexpr std::size_t kCoalesceItems = 4096;

  /// Per-shard worker-owned state (only the owning worker touches it
  /// after construction).
  struct alignas(64) WorkState {
    std::uint64_t applied_chunks = 0;
    std::uint64_t applied_obs = 0;
    std::uint64_t obs_since_publish = 0;
    std::shared_ptr<const CompiledRuleVersion> active;
  };

  [[nodiscard]] std::size_t shard_of(SubscriberKey subscriber) const {
    return shard_of_key(subscriber, shards_.size());
  }

  /// Submits every non-empty pending buffer to its shard queue. Callers
  /// must hold pending_mu_ for the _locked variants.
  void flush_pending() const;
  void flush_shard_locked(std::size_t s) const;
  void submit_locked(std::size_t s, Chunk chunk) const;

  /// Worker-side: wave handler and view publication.
  void handle_wave(unsigned s, std::vector<Chunk>& wave);
  void publish_view(unsigned s, WorkState& ws);

  /// Resolves one Observation to its interned form, counting hits.
  [[nodiscard]] static InternedObs intern_obs(const SignatureIndex& index,
                                              const Observation& obs,
                                              std::uint64_t& hits) {
    const Signature sig =
        index.sig_of(obs.server, obs.port, util::day_of(obs.hour));
    hits += (sig != kNoSig) ? 1U : 0U;
    return {obs.subscriber, obs.packets, sig, obs.hour};
  }

  /// Batched signature-lookup telemetry (one add per enqueue, not per
  /// observation).
  void bump_sig_counters(std::uint64_t lookups, std::uint64_t hits) {
    if (sig_lookups_) sig_lookups_->add(lookups);
    if (sig_hits_ && hits != 0) sig_hits_->add(hits);
  }

  /// Folds boundary-filtered misses into shard `s`'s flow accounting:
  /// stats().flows and the shard's detector_flows_total series stay
  /// exactly what a filter-free enqueue would have produced.
  void count_misses(std::size_t s, std::uint64_t misses) {
    if (misses == 0) return;
    missed_[s].v.fetch_add(misses, std::memory_order_relaxed);
    if (const auto& c = shards_[s]->instruments().flows) c->add(misses);
  }

  /// Per-shard miss counters, cache-line padded (producers on different
  /// shards must not false-share).
  struct alignas(64) PaddedCount {
    std::atomic<std::uint64_t> v{0};
  };

  std::vector<std::unique_ptr<Detector>> shards_;
  InternTable intern_;
  /// Producer-side current version: swapped by reload_rules under
  /// pending_mu_, loaded lock-free by readers.
  util::SharedSlot<const CompiledRuleVersion> version_;
  std::uint64_t next_version_id_ = 2;  ///< under pending_mu_
  SnapshotPolicy policy_;
  ViewHub hub_;
  std::vector<WorkState> work_;
  PublishHook publish_hook_;
  std::atomic<std::uint64_t> cutover_regressions_{0};
  std::unique_ptr<PaddedCount[]> missed_;
  std::shared_ptr<obs::Counter> sig_lookups_;
  std::shared_ptr<obs::Counter> sig_hits_;
  std::shared_ptr<obs::Counter> publishes_;
  std::shared_ptr<obs::Counter> reloads_;
  std::shared_ptr<obs::Gauge> version_gauge_;
  // Keep the per-shard detect-stage wave histograms alive for the pool's
  // lifetime (the pool config holds raw pointers into them).
  std::vector<std::shared_ptr<obs::Histogram>> detect_wave_ns_;
  std::vector<std::shared_ptr<obs::Histogram>> detect_wave_items_;
  // mutable: flushing the coalescing buffers and riding publish tokens
  // are logically const — they complete writes the API contract already
  // promised were visible.
  mutable std::mutex pending_mu_;
  mutable std::vector<std::vector<InternedObs>> pending_;
  mutable std::vector<std::uint64_t> submitted_;  ///< chunks, per shard
  mutable std::unique_ptr<pipeline::ShardPool<Chunk>> pool_;
};

}  // namespace haystack::core
