#include "flow/flow_cache.hpp"

#include <algorithm>

namespace haystack::flow {

namespace {

inline void append(std::vector<FlowRecord>& out, const FlowRecord& rec) {
  out.push_back(rec);
}

inline void append(FlowBatch& out, const FlowRecord& rec) { out.push(rec); }

}  // namespace

template <typename Out>
void FlowCache::add_impl(const PacketEvent& packet, Out& out) {
  // Opportunistic sweep at most once per idle timeout to bound cost.
  if (packet.timestamp_ms >= last_sweep_ms_ + config_.idle_timeout_ms) {
    flush_expired_impl(packet.timestamp_ms, out);
    last_sweep_ms_ = packet.timestamp_ms;
  }

  auto [it, inserted] = cache_.try_emplace(packet.key);
  if (inserted) {
    if (cache_.size() > config_.max_entries) {
      // Emergency expiry: flush everything but the new entry. Real routers
      // evict aggressively under pressure; total order is unimportant here.
      // The kept entry is copied out *before* the wholesale flush so the
      // re-emplace below never reads freed cache memory.
      Entry kept = it->second;
      FlowKey kept_key = it->first;
      cache_.erase(it);
      flush_all_impl(out);
      ++emergency_expiries_;
      it = cache_.try_emplace(kept_key, kept).first;
    }
    FlowRecord& fresh = it->second.record;
    fresh.key = packet.key;
    fresh.start_ms = packet.timestamp_ms;
  }
  FlowRecord& cur = it->second.record;
  cur.packets += 1;
  cur.bytes += packet.bytes;
  cur.tcp_flags |= packet.tcp_flags;
  cur.end_ms = std::max(cur.end_ms, packet.timestamp_ms);

  // Active timeout: export the flow if it has lived too long.
  if (cur.end_ms - cur.start_ms >= config_.active_timeout_ms) {
    append(out, cur);
    cache_.erase(it);
  }
}

template <typename Out>
void FlowCache::flush_expired_impl(std::uint64_t now_ms, Out& out) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    const FlowRecord& rec = it->second.record;
    const bool idle_expired =
        now_ms >= rec.end_ms && now_ms - rec.end_ms >= config_.idle_timeout_ms;
    const bool active_expired =
        rec.end_ms - rec.start_ms >= config_.active_timeout_ms;
    if (idle_expired || active_expired) {
      append(out, rec);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

template <typename Out>
void FlowCache::flush_all_impl(Out& out) {
  for (auto& [key, entry] : cache_) append(out, entry.record);
  cache_.clear();
}

void FlowCache::add(const PacketEvent& packet, std::vector<FlowRecord>& out) {
  add_impl(packet, out);
}

void FlowCache::flush_expired(std::uint64_t now_ms,
                              std::vector<FlowRecord>& out) {
  flush_expired_impl(now_ms, out);
}

void FlowCache::flush_all(std::vector<FlowRecord>& out) {
  flush_all_impl(out);
}

void FlowCache::add(const PacketEvent& packet, FlowBatch& out) {
  add_impl(packet, out);
}

void FlowCache::flush_expired(std::uint64_t now_ms, FlowBatch& out) {
  flush_expired_impl(now_ms, out);
}

void FlowCache::flush_all(FlowBatch& out) { flush_all_impl(out); }

}  // namespace haystack::flow
