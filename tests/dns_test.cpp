// Unit tests for the dns substrate: FQDN normalization, registrable-domain
// extraction (the paper's "SLD"), wildcard matching, and the passive-DNS
// database including CNAME chain traversal and the reverse view.
#include <gtest/gtest.h>

#include "dns/fqdn.hpp"
#include "dns/passive_dns.hpp"

namespace haystack::dns {
namespace {

TEST(FqdnTest, NormalizesCaseAndTrailingDot) {
  EXPECT_EQ(Fqdn{"WWW.Example.COM."}.str(), "www.example.com");
  EXPECT_TRUE(Fqdn{"a.b"}.valid());
  EXPECT_FALSE(Fqdn{""}.valid());
  EXPECT_FALSE(Fqdn{"a..b"}.valid());
  EXPECT_FALSE(Fqdn{std::string(300, 'a')}.valid());
}

TEST(FqdnTest, Labels) {
  const Fqdn f{"avs-alexa.na.amazon.com"};
  const auto labels = f.labels();
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], "avs-alexa");
  EXPECT_EQ(labels[3], "com");
  EXPECT_EQ(f.label_count(), 4u);
}

TEST(FqdnTest, RegistrableDomain) {
  EXPECT_EQ(Fqdn{"avs-alexa.na.amazon.com"}.registrable().str(),
            "amazon.com");
  EXPECT_EQ(Fqdn{"amazon.com"}.registrable().str(), "amazon.com");
  EXPECT_EQ(Fqdn{"a.b.example.co.uk"}.registrable().str(), "example.co.uk");
  EXPECT_EQ(Fqdn{"foo.smarter.am"}.registrable().str(), "smarter.am");
  // Unknown TLD: fall back to two labels.
  EXPECT_EQ(Fqdn{"x.y.unknowntld"}.registrable().str(), "y.unknowntld");
}

TEST(FqdnTest, SubdomainRelation) {
  const Fqdn parent{"amazon.com"};
  EXPECT_TRUE(Fqdn{"amazon.com"}.is_subdomain_of(parent));
  EXPECT_TRUE(Fqdn{"x.amazon.com"}.is_subdomain_of(parent));
  EXPECT_FALSE(Fqdn{"notamazon.com"}.is_subdomain_of(parent));
  EXPECT_FALSE(Fqdn{"amazon.com"}.is_subdomain_of(Fqdn{"x.amazon.com"}));
}

TEST(FqdnTest, WildcardPattern) {
  const Fqdn pattern{"*.deve.com"};
  EXPECT_TRUE(Fqdn{"c.deve.com"}.matches_pattern(pattern));
  EXPECT_FALSE(Fqdn{"deve.com"}.matches_pattern(pattern));
  EXPECT_FALSE(Fqdn{"a.b.deve.com"}.matches_pattern(pattern));  // one label
  EXPECT_FALSE(Fqdn{"c.devx.com"}.matches_pattern(pattern));
  EXPECT_TRUE(Fqdn{"exact.com"}.matches_pattern(Fqdn{"exact.com"}));
}

TEST(PassiveDnsTest, ResolveFollowsCnameChain) {
  PassiveDnsDb db;
  const Fqdn dev{"deva.com"};
  const Fqdn vm{"deva-vm.ec2compute.cloudsim.net"};
  const auto ip = *net::IpAddress::parse("52.1.2.3");
  db.add_cname(dev, vm, 0, 13);
  db.add_a(vm, ip, 0, 13);

  const auto res = db.resolve(dev, {0, 13});
  ASSERT_EQ(res.ips.size(), 1u);
  EXPECT_EQ(res.ips[0], ip);
  ASSERT_EQ(res.chain.size(), 2u);  // query name + cname target
}

TEST(PassiveDnsTest, ResolveRespectsWindow) {
  PassiveDnsDb db;
  const Fqdn name{"x.example.com"};
  db.add_a(name, *net::IpAddress::parse("1.1.1.1"), 0, 3);
  db.add_a(name, *net::IpAddress::parse("2.2.2.2"), 4, 9);
  EXPECT_EQ(db.resolve(name, {0, 3}).ips.size(), 1u);
  EXPECT_EQ(db.resolve(name, {0, 9}).ips.size(), 2u);
  EXPECT_TRUE(db.resolve(name, {10, 13}).ips.empty());
  EXPECT_TRUE(db.has_records(name, {0, 0}));
  EXPECT_FALSE(db.has_records(name, {10, 13}));
  EXPECT_FALSE(db.has_records(Fqdn{"unknown.com"}, {0, 13}));
}

TEST(PassiveDnsTest, DomainsOnIpIncludesCnameAliases) {
  PassiveDnsDb db;
  const auto ip = *net::IpAddress::parse("23.0.0.1");
  const Fqdn edge{"devb.com.edgekey.simcdn.net"};
  const Fqdn devb{"devb.com"};
  const Fqdn other{"anothersite.com"};
  db.add_a(edge, ip, 0, 13);
  db.add_cname(devb, edge, 0, 13);
  db.add_a(other, ip, 0, 13);

  const auto names = db.domains_on(ip, {0, 13});
  // edge (direct), devb (via reverse CNAME), anothersite (direct).
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::find(names.begin(), names.end(), devb) != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), other) != names.end());
}

TEST(PassiveDnsTest, CoalescesAdjacentObservations) {
  PassiveDnsDb db;
  const Fqdn name{"y.example.com"};
  const auto ip = *net::IpAddress::parse("3.3.3.3");
  db.add_a(name, ip, 0, 1);
  db.add_a(name, ip, 2, 3);  // adjacent: coalesce
  db.add_a(name, ip, 3, 5);  // overlapping: coalesce
  EXPECT_EQ(db.record_count(), 1u);
  EXPECT_EQ(db.resolve(name, {4, 4}).ips.size(), 1u);
}

TEST(PassiveDnsTest, CnameCycleIsSafe) {
  PassiveDnsDb db;
  const Fqdn a{"a.example.com"};
  const Fqdn b{"b.example.com"};
  db.add_cname(a, b, 0, 13);
  db.add_cname(b, a, 0, 13);
  const auto res = db.resolve(a, {0, 13});
  EXPECT_TRUE(res.ips.empty());
  EXPECT_EQ(res.chain.size(), 2u);
}

TEST(PassiveDnsTest, DomainsOnUnknownIpIsEmpty) {
  PassiveDnsDb db;
  EXPECT_TRUE(
      db.domains_on(*net::IpAddress::parse("9.9.9.9"), {0, 13}).empty());
}

}  // namespace
}  // namespace haystack::dns
