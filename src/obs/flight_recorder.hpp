// Flight recorder: fixed-size ring of structured events (ISSUE 5).
//
// Metrics answer "how much"; the recorder answers "what happened, in what
// order". Rare-but-load-bearing events — exporter restarts, template
// parks/recoveries, sequence gaps, backpressure stalls, checkpoint
// save/restore, degraded-confidence transitions — land in a bounded ring
// for post-mortem dumps: when a deployment misbehaves at hour 212, the
// last N events tell the story without grepping logs that were never
// written.
//
// Events are stamped on two axes: a monotonic sequence number (total
// order of recording) and the simulation hour (util::SimClock's HourBin
// axis, fed by whoever drives the pipeline via set_hour()). Wire-level
// events recorded from a single decode worker are therefore exactly as
// deterministic as the datagram order — the seeded fault scenarios replay
// the same event sequence every run (asserted in tests/obs_test.cpp).
//
// Concurrency: record() and dump() take one mutex. Events are rare by
// construction (restarts, stalls, gaps — not per-flow), so the lock never
// sits on a hot path; the registry handles the high-rate numbers.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/sim_clock.hpp"

namespace haystack::obs {

enum class EventKind : std::uint8_t {
  kExporterRestart,      ///< exporter process restarted (a = incarnation info)
  kSequenceGap,          ///< export stream gap (a = units presumed lost)
  kSequenceReplay,       ///< late/replayed datagram (a = units credited back)
  kTemplateParked,       ///< data before template, parked (a = template id)
  kTemplateRecovered,    ///< parked data decoded (a = records recovered)
  kTemplateEvicted,      ///< parked data discarded at the buffer bound
  kBackpressureStall,    ///< producer blocked on a full queue (a = depth)
  kSlowWave,             ///< stage wave over threshold (a = ns, b = items)
  kCacheEmergencyExpiry, ///< metering cache hit max_entries (a = flushed)
  kCheckpointSave,       ///< evidence checkpoint written (a = entries, b = bytes)
  kCheckpointRestore,    ///< checkpoint restored (a = entries, b = bytes)
  kCheckpointRejected,   ///< restore refused a blob (a = bytes)
  kDegradedEnter,        ///< loss rose past tolerance (a = loss, ppm)
  kDegradedExit,         ///< loss fell back under tolerance (a = loss, ppm)
  kPipelineShutdown,     ///< IngestPipeline::shutdown() ran
  kSelfCheckFailed,      ///< conservation invariant violated (a = count)
  kScrape,               ///< Reporter scraped the registry (a = scrape #)
  kDeltaMerged,          ///< vantage epoch sealed into the global map
                         ///< (source = epoch, a = collectors, b = rows)
  kDeltaRejected,        ///< malformed/mismatched delta refused
                         ///< (source = collector, a = bytes)
  kCollectorResync,      ///< collector resynced from an aggregator
                         ///< snapshot (source = collector, a = epoch)
  kAlertNewDetection,    ///< serve: coverage-met transitions in a published
                         ///< view (source = 'q'<<24|shard, a = new
                         ///< detections, b = ruleset version)
  kAlertConfidenceDegraded, ///< serve: a shard's views crossed into
                            ///< degraded confidence (a = loss, ppm)
  kAlertLossSpike,       ///< serve: observed loss jumped by more than the
                         ///< configured delta between consecutive views
                         ///< (a = new loss ppm, b = previous loss ppm)
  kEventKindCount,       ///< sentinel — keep last, never recorded
};

/// Event.kind is serialized into a uint8 slot in checkpoint/export ring
/// headers; adding a 257th kind (or reordering past the sentinel) is a
/// wire-format break. tests/obs_test.cpp additionally pins the numeric
/// values of the kinds that have shipped.
static_assert(static_cast<unsigned>(EventKind::kEventKindCount) <= 256U,
              "EventKind must fit the uint8 ring-header slot");

[[nodiscard]] const char* event_name(EventKind kind) noexcept;

/// One recorded event. `source` identifies the emitter (export source id,
/// router index, stage tag, shard — kind-dependent); `a`/`b` carry the
/// kind-specific arguments documented on EventKind.
struct Event {
  std::uint64_t seq = 0;      ///< monotonic record order
  EventKind kind = EventKind::kScrape;
  util::HourBin hour = 0;     ///< sim-time stamp (set_hour)
  std::uint32_t source = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1024);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Sets the sim-hour stamped onto subsequent events. Atomic; typically
  /// driven by the pipeline's push_* entry points.
  void set_hour(util::HourBin hour) noexcept {
    hour_.store(hour, std::memory_order_relaxed);
  }
  [[nodiscard]] util::HourBin hour() const noexcept {
    return hour_.load(std::memory_order_relaxed);
  }

  void record(EventKind kind, std::uint32_t source = 0, std::uint64_t a = 0,
              std::uint64_t b = 0);

  /// Ring contents, oldest to newest.
  [[nodiscard]] std::vector<Event> dump() const;

  /// Events ever recorded (including ones the ring has overwritten).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events lost to ring wraparound.
  [[nodiscard]] std::uint64_t overwritten() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear();

  /// JSON array of events (same shape obs::to_json uses for metrics).
  [[nodiscard]] std::string to_json() const;

 private:
  const std::size_t capacity_;
  std::atomic<std::uint32_t> hour_{0};
  mutable std::mutex mu_;
  std::vector<Event> ring_;   ///< ring_[seq % capacity_]
  std::uint64_t next_seq_ = 0;
};

}  // namespace haystack::obs
