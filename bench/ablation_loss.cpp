// Ablation: detection speed vs export-datagram loss (ISSUE 2).
//
// The collection pipeline is UDP end-to-end, so the detector never sees a
// perfect record stream. This bench sweeps the export-path drop rate over
// the active ground-truth window: every hour of home traffic rides through
// the BorderRouterFleet whose router links drop a fraction of the export
// datagrams, and the surviving records feed a D=0.4 detector. Reported per
// drop rate: the collector's own loss estimate (it should track the
// injected rate), detection coverage within 1/24/96 hours, services never
// cleanly detected, and how many of those the loss-aware relaxed verdict
// recovers as low-confidence detections once the estimated loss exceeds
// the tolerance.
#include <iostream>
#include <map>
#include <string>

#include "common.hpp"
#include "core/detector.hpp"
#include "flow/impairment.hpp"
#include "telemetry/border_fleet.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;

  util::print_banner(std::cout,
                     "Ablation: time-to-detection vs export loss "
                     "(active window, 1:1000 sampling, D=0.4)");
  util::TextTable table;
  table.header({"Drop", "est. loss", "within 1h", "within 24h",
                "within 96h", "never", "low-conf recovered"});

  for (const double drop : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    telemetry::BorderFleetConfig config;
    config.routers = 4;
    config.sampling = 1000;
    if (drop > 0.0) {
      config.impairment = flow::ImpairmentConfig{.seed = 1337, .drop = drop};
    }
    telemetry::BorderRouterFleet fleet{config};
    core::Detector det{world.rules().hitlist, world.rules(),
                       {.threshold = 0.4}};
    std::map<core::ServiceId, util::HourBin> first_traffic;
    for (util::HourBin h = 0; h < util::day_start(4); ++h) {
      const auto home = world.gt().hour_flows(h);
      for (const auto& f : home) {
        if (f.unit && !first_traffic.contains(*f.unit)) {
          first_traffic[*f.unit] = h;
        }
      }
      for (const auto& f : fleet.observe(home, h)) {
        det.observe(1, f.flow.key.dst, f.flow.key.dst_port,
                    f.flow.packets, h);
      }
    }
    det.set_observed_loss(fleet.estimated_loss());
    unsigned total = 0, w1 = 0, w24 = 0, w96 = 0, never = 0, lowconf = 0;
    for (const auto& rule : world.rules().rules) {
      if (rule.level == core::Level::kPlatform) continue;
      ++total;
      const auto dh = det.detection_hour(1, rule.service);
      if (!dh) {
        ++never;
        if (det.verdict(1, rule.service).detected) ++lowconf;
        continue;
      }
      const auto t0 = first_traffic.contains(rule.service)
                          ? first_traffic[rule.service]
                          : 0;
      const unsigned latency = *dh - t0;
      if (latency <= 1) ++w1;
      if (latency <= 24) ++w24;
      ++w96;
    }
    char loss_buf[32];
    std::snprintf(loss_buf, sizeof loss_buf, "%.1f%%",
                  100.0 * fleet.estimated_loss());
    table.row({drop == 0.0 ? "none"
                           : util::fmt_percent(drop),
               loss_buf, util::fmt_percent(double(w1) / total),
               util::fmt_percent(double(w24) / total),
               util::fmt_percent(double(w96) / total),
               std::to_string(never), std::to_string(lowconf)});
  }
  table.print(std::cout);
  std::cout << "\nExport loss costs detection *latency*, not coverage: "
               "rule evidence accumulates across hours, so a dropped "
               "datagram delays a detection rather than erasing it — the "
               "within-1h column falls with the drop rate while the "
               "within-24h column holds. The collector's sequence-based "
               "loss estimate tracks the injected rate closely, which is "
               "what makes the loss-aware relaxed verdict trustworthy as "
               "a degradation signal.\n";
  return 0;
}
