// Small statistics toolkit backing the evaluation harness: ECDFs (Figs. 9
// and 16), running moments, and percentile/heavy-hitter selection (Fig. 6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace haystack::util {

/// Empirical cumulative distribution function over double samples.
///
/// Build by add()ing samples, then freeze() once; query with fraction_at()
/// or quantile(). Queries on an unfrozen ECDF are invalid (checked by
/// assertion in debug builds).
class Ecdf {
 public:
  /// Adds one sample. O(1) amortized.
  void add(double sample) { samples_.push_back(sample); frozen_ = false; }

  /// Sorts the samples; must be called before queries. Idempotent.
  void freeze();

  /// Number of samples.
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Fraction of samples <= x. Requires freeze().
  [[nodiscard]] double fraction_at(double x) const;

  /// Value at quantile q in [0,1] (nearest-rank). Requires freeze().
  [[nodiscard]] double quantile(double q) const;

  /// Read-only access to the sorted samples. Requires freeze().
  [[nodiscard]] const std::vector<double>& sorted() const;

 private:
  std::vector<double> samples_;
  bool frozen_ = false;
};

/// Welford running mean/variance plus min/max. Numerically stable; used by
/// the bench harnesses to summarize per-hour series.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the indices of the top `fraction` of `weights` by weight
/// (at least one element when weights is non-empty). Used for the paper's
/// "top 10/20/30 % of service IPs by byte count" visibility analysis.
[[nodiscard]] std::vector<std::size_t> top_fraction_indices(
    const std::vector<std::uint64_t>& weights, double fraction);

}  // namespace haystack::util
