// Structure-aware fuzzer for the HSVD evidence-delta decoder (ISSUE 7).
//
// Corpus: real encode_delta output — empty heartbeat deltas, multi-row
// deltas with shared labels, and a snapshot-kind delta. Structure-aware
// mutations target the HSVD framing: the kind byte, the label count and
// label length prefixes, per-row label indices, the 64-bit row count
// (including the overflow-crafted values that make count*40 wrap), and
// truncation/extension around the strict row-section boundary.
//
// Properties checked per input:
//   - decode_delta() returns (no crash, no OOB — sanitizers enforce);
//   - an accepted parse is CANONICAL: re-encoding it reproduces the input
//     byte-for-byte (the decoder admits exactly the encoder's image);
//   - every accepted row's label index is within the label table;
//   - accept/reject is deterministic (a second decode agrees).
#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "flow/delta_wire.hpp"
#include "fuzz_harness.hpp"

namespace {

using haystack::fuzz::Bytes;
using namespace haystack::flow;

EvidenceDelta sample_delta(std::uint32_t rows, DeltaKind kind,
                           std::uint32_t version = kDeltaVersionCompact) {
  EvidenceDelta delta;
  delta.version = version;
  delta.collector = 3;
  delta.seq = 17;
  delta.epoch = 41;
  delta.kind = kind;
  delta.threshold_bits = 0x3fd999999999999aULL;  // 0.4
  delta.flows = 100000;
  delta.matched = 4242;
  delta.labels = {"echo-dot", "ring-doorbell", "chromecast"};
  for (std::uint32_t i = 0; i < rows; ++i) {
    DeltaRow row;
    row.subscriber = 0x1000 + i * 7;
    row.label = i % static_cast<std::uint32_t>(delta.labels.size());
    row.mask0 = (1ULL << (i % 64)) | 1U;
    row.mask1 = i % 5 == 0 ? (1ULL << 63) : 0;
    row.packets = 10 + i;
    row.first_seen = i % 48;
    delta.rows.push_back(row);
  }
  return delta;
}

std::vector<Bytes> build_corpus() {
  std::vector<Bytes> corpus;
  // Both wire versions: compact v2 (the default emitters now produce) and
  // legacy v1 (old collectors; the decoder keeps accepting it).
  for (const std::uint32_t version : {kDeltaVersionCompact, kDeltaVersion}) {
    corpus.push_back(
        encode_delta(sample_delta(0, DeltaKind::kDelta, version)));
    corpus.push_back(
        encode_delta(sample_delta(5, DeltaKind::kDelta, version)));
    corpus.push_back(
        encode_delta(sample_delta(64, DeltaKind::kDelta, version)));
    corpus.push_back(
        encode_delta(sample_delta(9, DeltaKind::kSnapshot, version)));
  }
  EvidenceDelta empty;
  corpus.push_back(encode_delta(empty));
  return corpus;
}

// HSVD offsets: magic u32 @0, version u32 @4, collector u32 @8, seq u32
// @12, epoch u32 @16, kind u8 @20, threshold u64 @21, flows u64 @29,
// matched u64 @37, label count u32 @45, then labels, then row count u64,
// then 40-byte rows.
void structure_mutate(Bytes& data, haystack::util::Pcg32& rng) {
  if (data.size() < 57) return;
  switch (rng.bounded(6)) {
    case 0:  // kind byte: kSnapshot, or out-of-range values
      data[20] = static_cast<std::uint8_t>(rng.bounded(8));
      break;
    case 1: {  // label count corruption (tiny, huge, off-by-one)
      constexpr std::uint32_t kCounts[] = {0, 1, 2, 4, 0xffff, 0xffffffff};
      const std::uint32_t v = kCounts[rng.bounded(6)];
      for (unsigned i = 0; i < 4; ++i) {
        data[45 + i] = static_cast<std::uint8_t>(v >> (24 - 8 * i));
      }
      break;
    }
    case 2: {  // first label's length prefix lies
      constexpr std::uint16_t kLens[] = {0, 1, 7, 0x00ff, 0xfffe, 0xffff};
      const std::uint16_t v = kLens[rng.bounded(6)];
      data[49] = static_cast<std::uint8_t>(v >> 8);
      data[50] = static_cast<std::uint8_t>(v);
      break;
    }
    case 3: {  // row count: huge values, including multiplication-overflow
               // bait around 2^64/40, written over the 8 bytes preceding
               // the (assumed canonical) 40-byte-aligned row tail
      const std::size_t rows_bytes =
          (data.size() - 57) - (data.size() - 57) % 40;
      const std::size_t pos = data.size() - rows_bytes - 8;
      constexpr std::uint64_t kCounts[] = {
          0, 1, 0xffffffffULL, 0x0666666666666666ULL /* ~2^64/40 */,
          0x0666666666666667ULL, 0xffffffffffffffffULL};
      const std::uint64_t v = kCounts[rng.bounded(6)];
      if (pos + 8 <= data.size()) {
        for (unsigned i = 0; i < 8; ++i) {
          data[pos + i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
        }
      }
      break;
    }
    case 4: {  // a row's label index (rows sit at the 40-byte tail; the
               // index is bytes 8..11 of the row)
      if (data.size() < 57 + 40) break;
      const std::size_t base = data.size() - 40 + 8;
      const std::uint32_t v = rng.bounded(16);
      for (unsigned i = 0; i < 4; ++i) {
        data[base + i] = static_cast<std::uint8_t>(v >> (24 - 8 * i));
      }
      break;
    }
    default:  // truncate or extend around the strict row boundary
      if (rng.chance(0.5)) {
        data.resize(data.size() -
                    1 - rng.bounded(static_cast<std::uint32_t>(
                            std::min<std::size_t>(data.size() - 1, 41))));
      } else {
        const std::uint32_t extra = 1 + rng.bounded(41);
        for (std::uint32_t i = 0; i < extra; ++i) data.push_back(0);
      }
      break;
  }
}

bool check(std::span<const std::uint8_t> input) {
  EvidenceDelta first;
  std::string error;
  const bool accepted = decode_delta(input, first, &error);
  if (accepted) {
    if (!error.empty()) return false;  // success must clear the error
    for (const DeltaRow& row : first.rows) {
      if (row.label >= first.labels.size()) return false;
    }
    // Canonical round-trip: the decoder admits exactly the encoder image.
    const Bytes reencoded = encode_delta(first);
    if (reencoded.size() != input.size() ||
        !std::equal(reencoded.begin(), reencoded.end(), input.begin())) {
      return false;
    }
  } else if (error.empty()) {
    return false;  // rejection must carry a reason
  }
  // Determinism: a second decode of the same bytes agrees.
  EvidenceDelta second;
  return decode_delta(input, second, nullptr) == accepted;
}

}  // namespace

#ifdef HAYSTACK_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)check({data, size});
  return 0;
}
#else
int main(int argc, char** argv) {
  const auto config = haystack::fuzz::parse_args(argc, argv);
  return haystack::fuzz::run_fuzz("fuzz_vantage_delta", config,
                                  build_corpus(), structure_mutate, check);
}
#endif
