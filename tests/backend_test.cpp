// Tests for the backend infrastructure builder: hosting invariants that the
// classification methodology depends on (exclusivity of dedicated IPs,
// CDN co-tenancy, database coverage gaps, AS topology).
#include <gtest/gtest.h>

#include <set>

#include "simnet/backend.hpp"

namespace haystack::simnet {
namespace {

class BackendTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    backend_ = new Backend(*catalog_, BackendConfig{});
  }
  static void TearDownTestSuite() {
    delete backend_;
    delete catalog_;
  }
  static Catalog* catalog_;
  static Backend* backend_;
};

Catalog* BackendTest::catalog_ = nullptr;
Backend* BackendTest::backend_ = nullptr;

TEST_F(BackendTest, DedicatedDomainsNeverShareIpsAcrossUnits) {
  // An IP hosting a dedicated (non-shared-role) domain must not appear in
  // any other unit domain's hosting, on any day — otherwise the
  // exclusivity analysis would be meaningless.
  std::map<net::IpAddress, std::pair<UnitId, unsigned>> owner;
  for (const auto& unit : catalog_->units()) {
    for (const auto* dom : catalog_->domains_of(unit.id)) {
      const auto& hosting = backend_->hosting_of(unit.id, dom->index);
      if (hosting.shared) continue;
      for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
        for (const auto& ip : hosting.daily_ips[day]) {
          const auto [it, inserted] =
              owner.try_emplace(ip, unit.id, dom->index);
          if (!inserted) {
            EXPECT_EQ(it->second.first, unit.id)
                << ip.to_string() << " shared across units";
            EXPECT_EQ(it->second.second, dom->index)
                << ip.to_string() << " shared across domains";
          }
        }
      }
    }
  }
}

TEST_F(BackendTest, SharedDomainsLandOnCdnPool) {
  const auto* apple = catalog_->unit_by_name("Apple TV");
  ASSERT_NE(apple, nullptr);
  const auto& hosting = backend_->hosting_of(apple->id, 0);
  EXPECT_TRUE(hosting.shared);
  for (const auto& ip : hosting.daily_ips[0]) {
    EXPECT_EQ(backend_->asns().role_of(ip), net::AsRole::kCdn);
  }
}

TEST_F(BackendTest, CloudUnitsGetCloudAddressesWithVmCname) {
  const auto* ring = catalog_->unit_by_name("Ring Doorbell");
  ASSERT_NE(ring, nullptr);
  const auto& hosting = backend_->hosting_of(ring->id, 0);
  EXPECT_TRUE(hosting.cloud_vm);
  EXPECT_TRUE(hosting.cname.valid());
  EXPECT_NE(hosting.cname.str().find("ec2compute"), std::string::npos);
  for (const auto& ip : hosting.daily_ips[0]) {
    EXPECT_EQ(backend_->asns().role_of(ip), net::AsRole::kCloud);
  }
}

TEST_F(BackendTest, PdnsOmitsTheMissingDomains) {
  for (const auto& dom : catalog_->domains()) {
    const bool has = backend_->pdns().has_records(
        dom.fqdn, {0, util::kStudyDays - 1});
    EXPECT_EQ(has, !dom.dnsdb_missing) << dom.fqdn.str();
  }
}

TEST_F(BackendTest, ScanDbCoversHttpsDomainsOnly) {
  // Every https unit domain must be recoverable through its banner.
  const auto* wansview = catalog_->unit_by_name("Wansview Cam.");
  ASSERT_NE(wansview, nullptr);
  const auto* dom = catalog_->domains_of(wansview->id)[0];
  ASSERT_TRUE(dom->dnsdb_missing);
  ASSERT_TRUE(dom->https);
  const auto ips = backend_->scans().ips_serving_domain(
      dom->fqdn, backend_->banner_checksum(dom->fqdn), {0, 0});
  EXPECT_FALSE(ips.empty());

  // LG TV's missing domains are non-HTTPS: no scan coverage.
  const auto* lg = catalog_->unit_by_name("LG TV");
  const auto* lg_dom = catalog_->domains_of(lg->id)[1];
  ASSERT_TRUE(lg_dom->dnsdb_missing);
  ASSERT_FALSE(lg_dom->https);
  EXPECT_TRUE(backend_->scans()
                  .ips_serving_domain(
                      lg_dom->fqdn,
                      backend_->banner_checksum(lg_dom->fqdn), {0, 0})
                  .empty());
}

TEST_F(BackendTest, DailyChurnChangesSomeDedicatedMappings) {
  std::size_t changed = 0;
  std::size_t dedicated = 0;
  for (const auto& unit : catalog_->units()) {
    for (const auto* dom : catalog_->domains_of(unit.id)) {
      const auto& hosting = backend_->hosting_of(unit.id, dom->index);
      if (hosting.shared) continue;
      ++dedicated;
      if (hosting.daily_ips[0] != hosting.daily_ips[util::kStudyDays - 1]) {
        ++changed;
      }
    }
  }
  // With 12% daily remap probability over 13 day transitions, most
  // dedicated domains remap at least once across the window.
  EXPECT_GT(changed, dedicated / 3);
  EXPECT_LT(changed, dedicated);
}

TEST_F(BackendTest, TopologyHasExpectedAsRoles) {
  const auto& asns = backend_->asns();
  EXPECT_EQ(asns.info(topo::kIspAs)->role, net::AsRole::kEyeball);
  EXPECT_EQ(asns.info(topo::kCloudAs)->role, net::AsRole::kCloud);
  EXPECT_EQ(asns.info(topo::kCdnAs)->role, net::AsRole::kCdn);
  EXPECT_EQ(backend_->ixp_eyeballs().size(), 12u);
  EXPECT_EQ(backend_->ixp_members().size(), 312u);
  // Subscribers resolve to the ISP AS.
  EXPECT_EQ(asns.origin(*net::IpAddress::parse("100.64.10.2")),
            topo::kIspAs);
}

TEST_F(BackendTest, GenericDomainsAreHosted) {
  for (std::size_t i = 0; i < catalog_->generic_domains().size(); ++i) {
    EXPECT_FALSE(backend_->generic_ips_of(i, 0).empty());
  }
}

TEST_F(BackendTest, BannerChecksumStable) {
  const dns::Fqdn d{"api.ring.com"};
  EXPECT_EQ(backend_->banner_checksum(d), backend_->banner_checksum(d));
  EXPECT_NE(backend_->banner_checksum(d),
            backend_->banner_checksum(dns::Fqdn{"api.nest.com"}));
}

TEST_F(BackendTest, DeterministicAcrossInstances) {
  Backend other{*catalog_, BackendConfig{}};
  const auto* unit = catalog_->unit_by_name("Yi Camera");
  for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
    EXPECT_EQ(backend_->ips_of(unit->id, 0, day),
              other.ips_of(unit->id, 0, day));
  }
}

}  // namespace
}  // namespace haystack::simnet
