#include "flow/template_plan.hpp"

#include <cstring>

#include "net/ip_address.hpp"

namespace haystack::flow::plan {

namespace {

// Field ids shared by NetFlow v9 (RFC 3954 §8) and IPFIX (RFC 7011 /
// IANA): the v9 field-type space is the seed of the IPFIX IE space, so
// the common fields carry the same numbers in both codecs.
constexpr std::uint16_t kInBytes = 1;
constexpr std::uint16_t kInPkts = 2;
constexpr std::uint16_t kProtocol = 4;
constexpr std::uint16_t kTcpFlags = 6;
constexpr std::uint16_t kL4SrcPort = 7;
constexpr std::uint16_t kIpv4SrcAddr = 8;
constexpr std::uint16_t kL4DstPort = 11;
constexpr std::uint16_t kIpv4DstAddr = 12;
constexpr std::uint16_t kLastSwitched = 21;   // v9 only
constexpr std::uint16_t kFirstSwitched = 22;  // v9 only
constexpr std::uint16_t kIpv6SrcAddr = 27;
constexpr std::uint16_t kIpv6DstAddr = 28;
constexpr std::uint16_t kSamplingInterval = 34;
constexpr std::uint16_t kFlowStartMs = 152;  // IPFIX only
constexpr std::uint16_t kFlowEndMs = 153;    // IPFIX only

/// Maps one fixed-length field to its destination column, mirroring the
/// reference decoders' per-field switches: a (type, length) pair either
/// decodes at exactly the declared length or is skipped at the declared
/// length. `v9_times` selects the 32-bit FIRST/LAST_SWITCHED pair versus
/// the 64-bit IPFIX millisecond IEs.
bool map_field(std::uint16_t id, std::uint16_t length, bool v9_times,
               Dst& dst) {
  switch (id) {
    case kIpv4SrcAddr:
      if (length != 4) return false;
      dst = Dst::kSrcV4;
      return true;
    case kIpv4DstAddr:
      if (length != 4) return false;
      dst = Dst::kDstV4;
      return true;
    case kIpv6SrcAddr:
      if (length != 16) return false;
      dst = Dst::kSrcV6;
      return true;
    case kIpv6DstAddr:
      if (length != 16) return false;
      dst = Dst::kDstV6;
      return true;
    case kL4SrcPort:
      if (length != 2) return false;
      dst = Dst::kSrcPort;
      return true;
    case kL4DstPort:
      if (length != 2) return false;
      dst = Dst::kDstPort;
      return true;
    case kProtocol:
      if (length != 1) return false;
      dst = Dst::kProto;
      return true;
    case kTcpFlags:
      if (length != 1) return false;
      dst = Dst::kTcpFlags;
      return true;
    case kInPkts:
      if (length == 8) {
        dst = Dst::kPackets64;
        return true;
      }
      if (length == 4) {
        dst = Dst::kPackets32;
        return true;
      }
      return false;
    case kInBytes:
      if (length == 8) {
        dst = Dst::kBytes64;
        return true;
      }
      if (length == 4) {
        dst = Dst::kBytes32;
        return true;
      }
      return false;
    case kFirstSwitched:
      if (!v9_times || length != 4) return false;
      dst = Dst::kStart32;
      return true;
    case kLastSwitched:
      if (!v9_times || length != 4) return false;
      dst = Dst::kEnd32;
      return true;
    case kFlowStartMs:
      if (v9_times || length != 8) return false;
      dst = Dst::kStart64;
      return true;
    case kFlowEndMs:
      if (v9_times || length != 8) return false;
      dst = Dst::kEnd64;
      return true;
    case kSamplingInterval:
      if (length != 4) return false;
      dst = Dst::kSampling;
      return true;
    default:
      return false;
  }
}

CompiledPlan compile_fixed(std::span<const WireField> fields, bool v9_times,
                           bool allow_var) {
  CompiledPlan plan;
  std::size_t offset = 0;
  for (const auto& f : fields) {
    if (allow_var && f.length == 0xffffU) {
      // Variable-length framing cannot be decoded at fixed offsets; the
      // collector falls back to the reference walk. (The check precedes
      // the enterprise bit, matching decode_data_set.)
      return CompiledPlan{};
    }
    Dst dst;
    if (!f.enterprise && map_field(f.id, f.length, v9_times, dst)) {
      plan.ops.push_back({dst, static_cast<std::uint16_t>(offset)});
    }
    offset += f.length;
  }
  plan.record_len = offset;
  // A record too large for u16 op offsets cannot occur inside a u16-length
  // flowset anyway; route it through the reference walk rather than
  // emitting truncated offsets.
  plan.fast = offset <= 0xffffU;
  if (!plan.fast) plan.ops.clear();
  return plan;
}

inline std::uint16_t load_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

inline std::uint32_t load_u32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline std::uint64_t load_u64(const std::uint8_t* p) {
  return (std::uint64_t{load_u32(p)} << 32) | load_u32(p + 4);
}

}  // namespace

CompiledPlan compile_netflow_v9(std::span<const WireField> fields) {
  return compile_fixed(fields, /*v9_times=*/true, /*allow_var=*/false);
}

CompiledPlan compile_ipfix(std::span<const WireField> fields) {
  return compile_fixed(fields, /*v9_times=*/false, /*allow_var=*/true);
}

std::size_t execute(const CompiledPlan& plan,
                    std::span<const std::uint8_t> body, FlowBatch& out) {
  const std::size_t rec_len = plan.record_len;
  const std::size_t count = body.size() / rec_len;
  if (count == 0) return 0;
  out.reserve(out.size() + count);
  const std::uint8_t* base = body.data();
  for (std::size_t i = 0; i < count; ++i, base += rec_len) {
    const std::size_t row = out.append_defaults();
    for (const auto& op : plan.ops) {
      const std::uint8_t* p = base + op.offset;
      switch (op.dst) {
        case Dst::kSrcV4:
          out.src[row] = net::IpAddress::v4(load_u32(p));
          break;
        case Dst::kDstV4:
          out.dst[row] = net::IpAddress::v4(load_u32(p));
          break;
        case Dst::kSrcV6:
          out.src[row] = net::IpAddress::v6(load_u64(p), load_u64(p + 8));
          break;
        case Dst::kDstV6:
          out.dst[row] = net::IpAddress::v6(load_u64(p), load_u64(p + 8));
          break;
        case Dst::kSrcPort:
          out.src_port[row] = load_u16(p);
          break;
        case Dst::kDstPort:
          out.dst_port[row] = load_u16(p);
          break;
        case Dst::kProto:
          out.proto[row] = *p;
          break;
        case Dst::kTcpFlags:
          out.tcp_flags[row] = *p;
          break;
        case Dst::kPackets64:
          out.packets[row] = load_u64(p);
          break;
        case Dst::kPackets32:
          out.packets[row] = load_u32(p);
          break;
        case Dst::kBytes64:
          out.bytes[row] = load_u64(p);
          break;
        case Dst::kBytes32:
          out.bytes[row] = load_u32(p);
          break;
        case Dst::kStart32:
          out.start_ms[row] = load_u32(p);
          break;
        case Dst::kEnd32:
          out.end_ms[row] = load_u32(p);
          break;
        case Dst::kStart64:
          out.start_ms[row] = load_u64(p);
          break;
        case Dst::kEnd64:
          out.end_ms[row] = load_u64(p);
          break;
        case Dst::kSampling:
          out.sampling[row] = load_u32(p);
          break;
      }
    }
  }
  return count;
}

}  // namespace haystack::flow::plan
