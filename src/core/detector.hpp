// Streaming IoT-device detector (paper Secs. 5/6).
//
// Consumes sampled flow observations one at a time: each flow's server-side
// (IP, port) is looked up in the daily hitlist; a match contributes one
// piece of evidence — "subscriber S contacted monitored domain m of service
// X". A service counts as detected for a subscriber once evidence covers
// max(1, floor(D*N)) of its N monitored domains (or its critical domain,
// when that alone is sufficient), *and* its hierarchy parent is detected
// (Samsung TV requires Samsung IoT first; Fire TV requires Amazon Product).
//
// The detector is deliberately tiny per flow: one hash lookup plus a bitset
// update, which is what makes the methodology viable at ISP scale
// ("millions of IoT devices within minutes").
//
// Rule state is versioned (ISSUE 8): the dispatch tables live in an
// immutable CompiledRuleVersion the detector holds by shared_ptr, so a
// hot-reload is one pointer swap (adopt_version) on the owning worker
// thread — in-flight evidence is retained and every verdict reports the
// version it was evaluated under.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/evidence_map.hpp"
#include "core/hitlist.hpp"
#include "core/rule_version.hpp"
#include "core/rules.hpp"
#include "core/signature_index.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/sim_clock.hpp"

namespace haystack::core {

/// Registry handles one detector instance bumps as it observes (ISSUE 5).
/// Null handles disable each hook. ShardedDetector wires one set per shard
/// (labels {{"shard", N}}), so hot counters never share a cache line
/// across shards; the time-to-detection histogram may be shared because
/// detection transitions are rare.
struct DetectorInstruments {
  std::shared_ptr<obs::Counter> flows;            ///< observations fed
  std::shared_ptr<obs::Counter> matched;          ///< hitlist matches
  std::shared_ptr<obs::Counter> rules_satisfied;  ///< coverage-met events
  std::shared_ptr<obs::Gauge> evidence_entries;   ///< evidence-map size
  /// Evidence-map slot-array bytes (FlatEvidenceMap::memory_bytes) — the
  /// per-shard memory gauge for the 15 M-line tier (ISSUE 9).
  std::shared_ptr<obs::Gauge> evidence_bytes;
  /// Hours from first evidence to rule satisfaction, per transition.
  std::shared_ptr<obs::Histogram> time_to_detection_hours;
  /// kDegradedEnter/kDegradedExit events on loss-tolerance crossings
  /// (source = `source`, a = loss in ppm).
  obs::FlightRecorder* recorder = nullptr;
  std::uint32_t source = 0;
};

/// The streaming detector.
class Detector {
 public:
  /// Compiles `rules` + `config` into version 1. `hitlist`/`rules` must
  /// outlive the detector (or its next adopt_version, whichever first).
  Detector(const Hitlist& hitlist, const RuleSet& rules,
           const DetectorConfig& config);

  /// Constructs directly on a precompiled version (shared across shards).
  explicit Detector(std::shared_ptr<const CompiledRuleVersion> version);

  /// Movable (factory functions return detectors by value); like every
  /// other write, moving is not safe while another thread observes.
  /// Spelled out because the atomic loss estimate is not itself movable.
  Detector(Detector&& other) noexcept
      : hitlist_{other.hitlist_},
        compiled_{std::move(other.compiled_)},
        evidence_{std::move(other.evidence_)},
        stats_{other.stats_},
        satisfied_total_{other.satisfied_total_},
        observed_loss_{other.observed_loss()},
        instruments_{std::move(other.instruments_)} {}
  Detector& operator=(Detector&& other) noexcept {
    hitlist_ = other.hitlist_;
    compiled_ = std::move(other.compiled_);
    evidence_ = std::move(other.evidence_);
    stats_ = other.stats_;
    satisfied_total_ = other.satisfied_total_;
    observed_loss_.store(other.observed_loss(), std::memory_order_relaxed);
    instruments_ = std::move(other.instruments_);
    return *this;
  }

  /// Hot-reload cutover (ISSUE 8): swaps the compiled rule tables,
  /// threshold, and hitlist to `version`, keeping all accumulated
  /// evidence. Must be called from the thread that owns this detector's
  /// writes (the shard worker, between waves) — it is NOT safe
  /// concurrently with observe paths from other threads.
  void adopt_version(std::shared_ptr<const CompiledRuleVersion> version);

  /// The compiled version currently evaluated under.
  [[nodiscard]] const std::shared_ptr<const CompiledRuleVersion>& version()
      const noexcept {
    return compiled_;
  }

  /// Feeds one sampled flow observation (already direction-normalized:
  /// `server`/`port` are the service side). Returns the hitlist match, if
  /// any — callers use this to avoid a second lookup.
  std::optional<Hit> observe(SubscriberKey subscriber,
                             const net::IpAddress& server, std::uint16_t port,
                             std::uint64_t packets, util::HourBin hour);

  /// Interned fast path (ISSUE 6): feeds one observation whose hitlist
  /// lookup was already resolved to a packed signature at the enqueue
  /// boundary (`SignatureIndex::sig_of`). `sig == kNoSig` counts the
  /// flow and returns, exactly like a hitlist miss in observe(). For any
  /// observation stream, produces bit-identical evidence, stats, and
  /// instrument bumps to observe() — the differential tier pins this.
  void observe_interned(SubscriberKey subscriber, Signature sig,
                        std::uint64_t packets, util::HourBin hour);

  /// Wave-batched variant for the sharded worker loop: applies the
  /// evidence update for one observation but defers flow/match counting
  /// to a single add_observation_counts() call per wave (two counter
  /// updates per wave instead of two per observation). Returns whether
  /// the signature matched. Final stats and instrument totals are
  /// bit-identical to the per-observation path.
  bool observe_interned_uncounted(SubscriberKey subscriber, Signature sig,
                                  std::uint64_t packets, util::HourBin hour);

  /// Folds wave totals from observe_interned_uncounted() into stats_ and
  /// the flow/match instruments.
  void add_observation_counts(std::uint64_t flows, std::uint64_t matched);

  /// Prefetches the evidence slot a future observation will touch (no-op
  /// for misses). Purely a cache hint — never changes state.
  void prefetch_evidence(SubscriberKey subscriber, Signature sig) const {
    if (sig == kNoSig) return;
    evidence_.prefetch(subscriber, sig_service(sig));
  }

  /// Hierarchy-aware detection: the hour at which the service and all of
  /// its ancestors were satisfied for this subscriber, or nullopt.
  [[nodiscard]] std::optional<util::HourBin> detection_hour(
      SubscriberKey subscriber, ServiceId service) const {
    return eval_detection_hour(evidence_, *compiled_, subscriber, service);
  }

  [[nodiscard]] bool detected(SubscriberKey subscriber,
                              ServiceId service) const {
    return detection_hour(subscriber, service).has_value();
  }

  /// Loss-aware verdict (see Verdict). Uses the loss set through
  /// set_observed_loss() against config().loss_tolerance, and is tagged
  /// with the active ruleset version.
  [[nodiscard]] Verdict verdict(SubscriberKey subscriber,
                                ServiceId service) const {
    return eval_verdict(evidence_, *compiled_, observed_loss(), subscriber,
                        service);
  }

  /// Feeds the current estimated loss fraction of the observation channel
  /// (e.g. flow::nf9::Collector::estimated_loss()). Clamped to [0, 1].
  void set_observed_loss(double fraction) noexcept;
  [[nodiscard]] double observed_loss() const noexcept {
    return observed_loss_.load(std::memory_order_relaxed);
  }
  /// True when the channel loss exceeds the configured tolerance.
  [[nodiscard]] bool degraded() const noexcept {
    return observed_loss() > compiled_->config.loss_tolerance;
  }

  /// Raw evidence for diagnostics/tests; nullptr when none.
  [[nodiscard]] const Evidence* evidence(SubscriberKey subscriber,
                                         ServiceId service) const;

  /// The raw evidence table — the read-view publisher clones it at wave
  /// boundaries (core/read_view.hpp). Owning-thread or quiescent access
  /// only, like every other read of live evidence.
  [[nodiscard]] const FlatEvidenceMap<Evidence>& evidence_map()
      const noexcept {
    return evidence_;
  }

  /// Visits every (subscriber, service, evidence) triple.
  void for_each_evidence(
      const std::function<void(SubscriberKey, ServiceId, const Evidence&)>&
          fn) const;

  /// Drops all evidence (per-bin analyses re-use one detector).
  void clear();

  /// Throughput counters.
  struct Stats {
    std::uint64_t flows = 0;
    std::uint64_t matched = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Cumulative coverage-met transitions (the new-detection alert basis;
  /// monotone, never reset by adopt_version).
  [[nodiscard]] std::uint64_t satisfied_total() const noexcept {
    return satisfied_total_;
  }

  /// Checkpoint support (core/checkpoint.hpp): installs one evidence row /
  /// the saved throughput counters verbatim. Restored state is bit-for-bit
  /// what for_each_evidence()/stats() produced at save time.
  void restore_evidence(SubscriberKey subscriber, ServiceId service,
                        const Evidence& evidence);
  void restore_stats(const Stats& stats) noexcept { stats_ = stats; }

  [[nodiscard]] const DetectorConfig& config() const noexcept {
    return compiled_->config;
  }
  [[nodiscard]] const RuleSet& rules() const noexcept {
    return *compiled_->rules;
  }

  /// Attaches registry instrumentation (ISSUE 5). Call at wiring time,
  /// before observations flow.
  void set_instruments(DetectorInstruments instruments) {
    instruments_ = std::move(instruments);
  }
  [[nodiscard]] const DetectorInstruments& instruments() const noexcept {
    return instruments_;
  }

 private:
  /// Evidence update shared by observe() and observe_interned(); both
  /// paths must stay bit-identical (differential tier).
  void apply_match(SubscriberKey subscriber, ServiceId service,
                   std::uint16_t pos, const RuleFast& fast,
                   std::uint64_t packets, util::HourBin hour);

  /// Raw-IP lookup path hitlist; adopt_version retargets it to the new
  /// version's hitlist (RuleSet owns its hitlist by value).
  const Hitlist* hitlist_;
  std::shared_ptr<const CompiledRuleVersion> compiled_;
  /// Flat open-addressing table: one cache line per probe on the hot
  /// path (see core/evidence_map.hpp).
  FlatEvidenceMap<Evidence> evidence_;
  Stats stats_;
  std::uint64_t satisfied_total_ = 0;
  /// Atomic so a view publication on the owning worker may read it while
  /// a control thread feeds a new estimate (relaxed: a one-publish-stale
  /// loss is fine, tearing a double is not).
  std::atomic<double> observed_loss_{0.0};
  DetectorInstruments instruments_;
};

}  // namespace haystack::core
