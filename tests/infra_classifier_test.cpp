// Unit tests for the dedicated-vs-shared classifier (Sec. 4.2), driven by
// hand-built passive-DNS and scan databases so every rule branch is pinned:
// the exclusive-IP rule, the EC2-CNAME case, the CDN case, churn handling,
// and the certificate fallback.
#include <gtest/gtest.h>

#include "core/infra_classifier.hpp"

namespace haystack::core {
namespace {

ServiceDomain make_domain(const std::string& name, bool https = false,
                          std::optional<std::uint64_t> banner = {}) {
  ServiceDomain d;
  d.fqdn = dns::Fqdn{name};
  d.port = 443;
  d.https = https;
  d.banner = banner;
  return d;
}

class InfraClassifierTest : public ::testing::Test {
 protected:
  dns::PassiveDnsDb pdns_;
  tlscert::CertScanDb scans_;

  InfraClassifier classifier() {
    return InfraClassifier{pdns_, scans_, 0, util::kStudyDays - 1};
  }
};

TEST_F(InfraClassifierTest, DirectDedicatedDomain) {
  const dns::Fqdn name{"api.ring.com"};
  pdns_.add_a(name, *net::IpAddress::parse("140.1.0.1"), 0,
              util::kStudyDays - 1);
  const auto result = classifier().classify(make_domain("api.ring.com"));
  EXPECT_EQ(result.cls, InfraClass::kDedicated);
  ASSERT_EQ(result.daily_ips.size(), util::kStudyDays);
  EXPECT_EQ(result.daily_ips[0].size(), 1u);
}

TEST_F(InfraClassifierTest, SameSldCoTenancyStaysDedicated) {
  // api.ring.com and events.ring.com on one IP: same SLD -> exclusive.
  const auto ip = *net::IpAddress::parse("140.1.0.2");
  pdns_.add_a(dns::Fqdn{"api.ring.com"}, ip, 0, util::kStudyDays - 1);
  pdns_.add_a(dns::Fqdn{"events.ring.com"}, ip, 0, util::kStudyDays - 1);
  EXPECT_EQ(classifier().classify(make_domain("api.ring.com")).cls,
            InfraClass::kDedicated);
}

TEST_F(InfraClassifierTest, CloudVmCnameChainIsDedicated) {
  // The Sec. 4.2.1 EC2 example: devA.com -> devA-VM.ec2compute... -> IP,
  // and the IP serves only that chain.
  const dns::Fqdn dev{"deva.com"};
  const dns::Fqdn vm{"deva-vm.ec2compute.cloudsim.net"};
  const auto ip = *net::IpAddress::parse("52.0.0.7");
  pdns_.add_cname(dev, vm, 0, util::kStudyDays - 1);
  pdns_.add_a(vm, ip, 0, util::kStudyDays - 1);
  EXPECT_EQ(classifier().classify(make_domain("deva.com")).cls,
            InfraClass::kDedicated);
}

TEST_F(InfraClassifierTest, CdnCoTenancyIsShared) {
  // The Sec. 4.2.1 Akamai example: devB.com -> devB.com.akadns.net -> IP,
  // and anothersite.com.akadns.net maps to the same IP.
  const auto ip = *net::IpAddress::parse("23.0.0.9");
  pdns_.add_cname(dns::Fqdn{"devb.com"}, dns::Fqdn{"devb.com.akadns.net"}, 0,
                  util::kStudyDays - 1);
  pdns_.add_a(dns::Fqdn{"devb.com.akadns.net"}, ip, 0, util::kStudyDays - 1);
  pdns_.add_a(dns::Fqdn{"anothersite.com.akadns.net"}, ip, 0,
              util::kStudyDays - 1);
  EXPECT_EQ(classifier().classify(make_domain("devb.com")).cls,
            InfraClass::kShared);
}

TEST_F(InfraClassifierTest, SharedOnAnySingleDayIsShared) {
  // Dedicated for all days requires exclusivity every day: one bad day
  // (IP re-used by a foreign domain) flips the verdict.
  const dns::Fqdn name{"api.devc.com"};
  const auto ip = *net::IpAddress::parse("140.2.0.1");
  pdns_.add_a(name, ip, 0, util::kStudyDays - 1);
  pdns_.add_a(dns::Fqdn{"foreign.org"}, ip, 5, 5);
  EXPECT_EQ(classifier().classify(make_domain("api.devc.com")).cls,
            InfraClass::kShared);
}

TEST_F(InfraClassifierTest, ChurnAcrossDaysStaysDedicated) {
  // Different IPs on different days, each exclusive: still dedicated, and
  // the daily index reflects the churn.
  const dns::Fqdn name{"api.devd.com"};
  pdns_.add_a(name, *net::IpAddress::parse("140.3.0.1"), 0, 6);
  pdns_.add_a(name, *net::IpAddress::parse("140.3.0.2"), 7,
              util::kStudyDays - 1);
  const auto result = classifier().classify(make_domain("api.devd.com"));
  EXPECT_EQ(result.cls, InfraClass::kDedicated);
  EXPECT_EQ(result.daily_ips[0][0], *net::IpAddress::parse("140.3.0.1"));
  EXPECT_EQ(result.daily_ips[13][0], *net::IpAddress::parse("140.3.0.2"));
}

TEST_F(InfraClassifierTest, NoDnsRecordNoHttpsIsNoData) {
  EXPECT_EQ(classifier().classify(make_domain("ghost.example.com")).cls,
            InfraClass::kNoData);
}

TEST_F(InfraClassifierTest, CertScanFallbackRecoversMissingDomain) {
  // No passive-DNS record, but the scan dataset has a matching dedicated
  // certificate + banner on two IPs.
  tlscert::Certificate cert;
  cert.subject_cn = dns::Fqdn{"*.deve.com"};
  cert.sans.emplace_back("deve.com");
  scans_.add({*net::IpAddress::parse("52.0.1.1"), cert, 42, 0,
              util::kStudyDays - 1});
  scans_.add({*net::IpAddress::parse("52.0.1.2"), cert, 42, 0,
              util::kStudyDays - 1});
  const auto result =
      classifier().classify(make_domain("c.deve.com", true, 42));
  EXPECT_EQ(result.cls, InfraClass::kViaCertScan);
  ASSERT_EQ(result.daily_ips.size(), util::kStudyDays);
  EXPECT_EQ(result.daily_ips[3].size(), 2u);
}

TEST_F(InfraClassifierTest, CertScanNeedsBanner) {
  tlscert::Certificate cert;
  cert.subject_cn = dns::Fqdn{"*.devf.com"};
  scans_.add({*net::IpAddress::parse("52.0.2.1"), cert, 42, 0, 13});
  // HTTPS but no recorded banner checksum -> no fallback possible.
  EXPECT_EQ(classifier().classify(make_domain("c.devf.com", true)).cls,
            InfraClass::kNoData);
}

TEST_F(InfraClassifierTest, CertScanWrongBannerIsNoData) {
  tlscert::Certificate cert;
  cert.subject_cn = dns::Fqdn{"*.devg.com"};
  cert.sans.emplace_back("devg.com");
  scans_.add({*net::IpAddress::parse("52.0.3.1"), cert, 42, 0, 13});
  EXPECT_EQ(classifier().classify(make_domain("c.devg.com", true, 43)).cls,
            InfraClass::kNoData);
}

}  // namespace
}  // namespace haystack::core
