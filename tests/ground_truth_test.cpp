// Integration tests over the ground-truth pipeline: testbed generation →
// ISP sampling → detection. Asserts the paper's Sec. 3/5 shapes with
// tolerant bounds (exact values are seed-dependent; the *relationships*
// are what the paper reports).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/detector.hpp"
#include "simnet/backend.hpp"
#include "simnet/ground_truth.hpp"
#include "simnet/manual_analysis.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/vantage.hpp"

namespace haystack {
namespace {

class GroundTruthPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new simnet::Catalog();
    backend_ = new simnet::Backend(*catalog_, simnet::BackendConfig{});
    gt_ = new simnet::GroundTruthSim(*backend_, simnet::GroundTruthConfig{});
    ruleset_ = new core::RuleSet(simnet::build_ruleset(*backend_));
  }
  static void TearDownTestSuite() {
    delete ruleset_;
    delete gt_;
    delete backend_;
    delete catalog_;
  }

  // Runs the sampled-ISP detector over a window; returns detection hours
  // per service for the single ground-truth subscriber.
  static std::map<core::ServiceId, util::HourBin> run_window(
      util::HourBin start, util::HourBin end, double threshold) {
    telemetry::IspVantage isp{
        {.sampling = 1000, .wire_roundtrip = false}};
    core::Detector det{ruleset_->hitlist, *ruleset_,
                       {.threshold = threshold}};
    std::map<core::ServiceId, util::HourBin> first_traffic;
    for (util::HourBin h = start; h < end; ++h) {
      const auto home = gt_->hour_flows(h);
      for (const auto& f : home) {
        if (f.unit && !first_traffic.contains(*f.unit)) {
          first_traffic[*f.unit] = h;
        }
      }
      for (const auto& f : isp.observe(home, h)) {
        det.observe(1, f.flow.key.dst, f.flow.key.dst_port, f.flow.packets,
                    h);
      }
    }
    std::map<core::ServiceId, util::HourBin> latency;
    for (const auto& rule : ruleset_->rules) {
      if (const auto dh = det.detection_hour(1, rule.service)) {
        const util::HourBin t0 = first_traffic.contains(rule.service)
                                     ? first_traffic[rule.service]
                                     : start;
        latency[rule.service] = *dh - t0;
      }
    }
    return latency;
  }

  static simnet::Catalog* catalog_;
  static simnet::Backend* backend_;
  static simnet::GroundTruthSim* gt_;
  static core::RuleSet* ruleset_;
};

simnet::Catalog* GroundTruthPipeline::catalog_ = nullptr;
simnet::Backend* GroundTruthPipeline::backend_ = nullptr;
simnet::GroundTruthSim* GroundTruthPipeline::gt_ = nullptr;
core::RuleSet* GroundTruthPipeline::ruleset_ = nullptr;

TEST_F(GroundTruthPipeline, NoTrafficOutsideExperimentWindows) {
  EXPECT_TRUE(gt_->hour_flows(util::day_start(5)).empty());   // Nov 20
  EXPECT_TRUE(gt_->hour_flows(util::day_start(12)).empty());  // Nov 27
  EXPECT_FALSE(gt_->hour_flows(0).empty());
  EXPECT_FALSE(gt_->hour_flows(util::day_start(8)).empty());
}

TEST_F(GroundTruthPipeline, Testbed1LagsTestbed2InActiveWindow) {
  std::set<unsigned> testbeds_hour0;
  for (const auto& f : gt_->hour_flows(0)) {
    testbeds_hour0.insert(
        catalog_->instances()[f.instance].testbed);
  }
  EXPECT_EQ(testbeds_hour0, std::set<unsigned>{2});
  std::set<unsigned> testbeds_hour13;
  for (const auto& f : gt_->hour_flows(13)) {
    testbeds_hour13.insert(catalog_->instances()[f.instance].testbed);
  }
  EXPECT_EQ(testbeds_hour13, (std::set<unsigned>{1, 2}));
}

TEST_F(GroundTruthPipeline, HomeVpUniqueServiceIpsInPaperRange) {
  // Fig. 5(a): 500–1300 unique service IPs per hour during active
  // experiments (both testbeds running).
  for (const util::HourBin h : {24u, 48u, 80u}) {
    std::set<net::IpAddress> ips;
    for (const auto& f : gt_->hour_flows(h)) ips.insert(f.flow.key.dst);
    EXPECT_GE(ips.size(), 500u) << "hour " << h;
    EXPECT_LE(ips.size(), 1600u) << "hour " << h;
  }
}

TEST_F(GroundTruthPipeline, SampledIpVisibilityNearPaper) {
  // Sec. 3: ~16% of service IPs visible per hour at the ISP (idle);
  // active hours are somewhat more visible in our reproduction.
  telemetry::IspVantage isp{{.sampling = 1000, .wire_roundtrip = false}};
  double idle_sum = 0;
  int idle_hours = 0;
  for (util::HourBin h = util::day_start(9); h < util::day_start(9) + 12;
       ++h) {
    const auto home = gt_->hour_flows(h);
    const auto sampled = isp.observe(home, h);
    std::set<net::IpAddress> home_ips;
    std::set<net::IpAddress> isp_ips;
    for (const auto& f : home) home_ips.insert(f.flow.key.dst);
    for (const auto& f : sampled) isp_ips.insert(f.flow.key.dst);
    idle_sum += static_cast<double>(isp_ips.size()) /
                static_cast<double>(home_ips.size());
    ++idle_hours;
  }
  const double idle_visibility = idle_sum / idle_hours;
  EXPECT_GT(idle_visibility, 0.10);
  EXPECT_LT(idle_visibility, 0.30);
}

TEST_F(GroundTruthPipeline, DeviceVisibilityNearPaper) {
  // Sec. 3: 67%/64% of devices visible per hour (active/idle).
  telemetry::IspVantage isp{{.sampling = 1000, .wire_roundtrip = false}};
  auto device_visibility = [&](util::HourBin h) {
    const auto home = gt_->hour_flows(h);
    const auto sampled = isp.observe(home, h);
    std::set<simnet::InstanceId> home_dev;
    std::set<simnet::InstanceId> isp_dev;
    for (const auto& f : home) home_dev.insert(f.instance);
    for (const auto& f : sampled) isp_dev.insert(f.instance);
    return static_cast<double>(isp_dev.size()) /
           static_cast<double>(home_dev.size());
  };
  const double active = device_visibility(40);
  const double idle = device_visibility(util::day_start(9) + 4);
  EXPECT_GT(active, 0.5);
  EXPECT_LT(active, 0.9);
  EXPECT_GT(idle, 0.4);
  EXPECT_LT(idle, 0.85);
}

TEST_F(GroundTruthPipeline, HeavyHittersLargelyVisible) {
  // Fig. 6: >75% of the top-10% service IPs by bytes are visible.
  telemetry::IspVantage isp{{.sampling = 1000, .wire_roundtrip = false}};
  const util::HourBin h = 30;
  const auto home = gt_->hour_flows(h);
  const auto sampled = isp.observe(home, h);
  telemetry::HeavyHitterView hh;
  for (const auto& f : home) hh.add_reference(f.flow.key.dst, f.flow.bytes);
  for (const auto& f : sampled) hh.mark_visible(f.flow.key.dst);
  EXPECT_GT(hh.visible_fraction_of_top(0.1), 0.75);
  EXPECT_GT(hh.visible_fraction_of_top(0.2),
            hh.visible_fraction_of_top(0.3));
  EXPECT_LT(hh.visible_fraction(), hh.visible_fraction_of_top(0.3));
}

TEST_F(GroundTruthPipeline, ActiveDetectionRatesMatchSec5) {
  // "72/93/96% of IoT devices detectable at manufacturer or product level
  // within 1/24/72 hours in the active mode" (D=0.4).
  const auto latency = run_window(0, util::day_start(4), 0.4);
  unsigned total = 0;
  unsigned within1 = 0;
  unsigned within24 = 0;
  unsigned within72 = 0;
  for (const auto& rule : ruleset_->rules) {
    if (rule.level == core::Level::kPlatform) continue;
    ++total;
    const auto it = latency.find(rule.service);
    if (it == latency.end()) continue;
    if (it->second <= 1) ++within1;
    if (it->second <= 24) ++within24;
    if (it->second <= 72) ++within72;
  }
  EXPECT_EQ(total, 31u);
  EXPECT_NEAR(100.0 * within1 / total, 72.0, 15.0);
  EXPECT_NEAR(100.0 * within24 / total, 93.0, 10.0);
  EXPECT_NEAR(100.0 * within72 / total, 96.0, 8.0);
}

TEST_F(GroundTruthPipeline, IdleDetectionSlowerAndSparser) {
  // Idle mode: 40/73/76% within 1/24/72h, with several devices never
  // detected — including Samsung TV, gated on its superclass (Sec. 5).
  const auto start = util::day_start(util::kIdleFirstDay);
  const auto latency = run_window(start, start + 72, 0.4);
  unsigned total = 0;
  unsigned within1 = 0;
  unsigned within24 = 0;
  unsigned within72 = 0;
  unsigned never = 0;
  for (const auto& rule : ruleset_->rules) {
    if (rule.level == core::Level::kPlatform) continue;
    ++total;
    const auto it = latency.find(rule.service);
    if (it == latency.end()) {
      ++never;
      continue;
    }
    if (it->second <= 1) ++within1;
    if (it->second <= 24) ++within24;
    if (it->second <= 72) ++within72;
  }
  EXPECT_NEAR(100.0 * within1 / total, 40.0, 20.0);
  EXPECT_NEAR(100.0 * within24 / total, 73.0, 12.0);
  EXPECT_NEAR(100.0 * within72 / total, 76.0, 12.0);
  EXPECT_GE(never, 4u);  // paper: 6 undetectable over the idle window

  const auto* stv = ruleset_->rule_by_name("Samsung TV");
  ASSERT_NE(stv, nullptr);
  EXPECT_FALSE(latency.contains(stv->service));
}

TEST_F(GroundTruthPipeline, HigherThresholdNeverFaster) {
  // Property: raising D can only delay or lose detections (Fig. 10).
  const auto low = run_window(0, util::day_start(4), 0.2);
  const auto high = run_window(0, util::day_start(4), 0.8);
  for (const auto& [service, t_high] : high) {
    const auto it = low.find(service);
    ASSERT_NE(it, low.end()) << "detected at D=0.8 but not D=0.2";
    EXPECT_LE(it->second, t_high);
  }
  EXPECT_LE(high.size(), low.size());
}

TEST_F(GroundTruthPipeline, InteractionBudgetRoughlyMatches9810) {
  std::uint64_t total = 0;
  for (const auto& inst : catalog_->instances()) {
    for (util::HourBin h = 0; h < util::day_start(4); ++h) {
      total += gt_->interactions_in(inst.id, h);
    }
  }
  EXPECT_NEAR(static_cast<double>(total), 9810.0, 9810.0 * 0.15);
}

TEST_F(GroundTruthPipeline, WireRoundtripDoesNotChangeResults) {
  // The NetFlow codec on the path must be lossless: same detections with
  // and without the wire round trip.
  telemetry::IspVantage wire{{.sampling = 1000, .wire_roundtrip = true}};
  telemetry::IspVantage direct{{.sampling = 1000, .wire_roundtrip = false}};
  const auto home = gt_->hour_flows(24);
  const auto a = wire.observe(home, 24);
  const auto b = direct.observe(home, 24);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].flow, b[i].flow);
  }
  EXPECT_EQ(wire.wire_stats().malformed_packets, 0u);
  EXPECT_GT(wire.wire_stats().records, 0u);
}

}  // namespace
}  // namespace haystack
