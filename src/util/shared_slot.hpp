// TSan-clean published-pointer slot.
//
// GCC 12's std::atomic<std::shared_ptr<T>> guards its control block with
// an embedded pointer-tag spinlock, but the reader side of load() drops
// that lock with a *relaxed* RMW (libstdc++ bits/shared_ptr_atomic.h:
// `_M_refcount.unlock(memory_order_relaxed)`), so a reader's copy of the
// raw pointer and the next writer's swap of it are not ordered by
// happens-before. That is a formal data race under the C++ memory model
// — harmless on the hardware the lock protocol targets, but reported by
// ThreadSanitizer, and this repo's TSan legs are load-bearing.
//
// SharedSlot owns the synchronization explicitly instead: a one-byte
// spinlock taken with exchange(acquire) and dropped with store(release)
// around a plain shared_ptr copy/swap. The critical section is a pointer
// move plus a refcount bump — publishers never hold it across merge or
// detect work, so readers never wait behind ingest, and the progress
// guarantee is the same as libstdc++'s own lock-bit implementation.
// Retired values are released outside the critical section so a slot
// store never runs a destructor under the lock.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

namespace haystack::util {

template <typename T>
class SharedSlot {
 public:
  SharedSlot() = default;
  explicit SharedSlot(std::shared_ptr<T> p) noexcept : ptr_(std::move(p)) {}

  SharedSlot(const SharedSlot&) = delete;
  SharedSlot& operator=(const SharedSlot&) = delete;

  /// Copy of the currently published pointer.
  [[nodiscard]] std::shared_ptr<T> load() const noexcept {
    lock();
    std::shared_ptr<T> out = ptr_;
    unlock();
    return out;
  }

  /// Publish `p`; the previous value is released after the lock drops.
  void store(std::shared_ptr<T> p) noexcept {
    lock();
    ptr_.swap(p);
    unlock();
  }

 private:
  void lock() const noexcept {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // Holders only move a pointer; spinning is nanoseconds.
    }
  }
  void unlock() const noexcept {
    locked_.store(false, std::memory_order_release);
  }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<T> ptr_;
};

}  // namespace haystack::util
