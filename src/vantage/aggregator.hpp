// Crash-consistent evidence aggregator for the multi-vantage fleet
// (ISSUE 7 tentpole).
//
// The aggregator merges per-collector evidence deltas into ONE global
// evidence map that is bit-for-bit identical to a single-process
// Detector fed the union of all slices (the vantage differential suite
// pins this across clean and impaired delta channels, shard sweeps, and
// mid-study collector kill/restart). Three mechanisms make that hold on
// an unreliable channel:
//
//  1. Idempotent staging. Delta rows carry cumulative per-collector state
//     (flow/delta_wire.hpp), so a duplicated or reordered delta joins
//     into the staged epoch via core::merge_evidence and changes nothing.
//     Each datagram's sequence number runs through a per-collector
//     flow::SequenceTracker purely for classification (gap / replay /
//     restart events, health); correctness never depends on ordering.
//
//  2. The epoch barrier. Epochs are hours. Epoch E folds into the global
//     map only when EVERY registered collector whose first_epoch <= E has
//     staged E — only then is the global mask for hour E complete, and
//     only then does the aggregator evaluate newly-satisfied rules and
//     stamp satisfied_hour = E, reproducing exactly the hour a
//     single-process detector would have stamped mid-stream. Folding adds
//     each collector's cumulative-counter advance (new - previously
//     merged, e.g. packets) to the global row exactly once, so sums stay
//     exact without double-counting.
//
//  3. Merged-only acks. acked_through() reports the last epoch actually
//     folded, never merely staged: staged deltas die with an aggregator
//     crash, and because they were never acked the collectors still hold
//     and retransmit them. save()/restore() ("HSAG") persist the global
//     map (as an embedded interned HSCK checkpoint) plus every
//     collector's merged cumulative state; staged epochs and sequence
//     trackers are deliberately NOT saved. Restore failure clears ALL
//     aggregator state — global and per-collector — mirroring the
//     InternTable cleared-on-failed-restore contract, so a corrupt blob
//     cannot leave a half-merged evidence map behind.
//
// snapshot_for() serves restart resync and late join: a kSnapshot delta
// holding one collector's merged cumulative rows as of its last merged
// epoch, which Collector::install_snapshot turns back into a live
// detector.
//
// Thread safety: every public method locks one mutex. Merging is a cold
// path (one delta per collector per hour) — contention is not a concern,
// but concurrent offer()/query must be race-free (TSan runs the vantage
// label).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/evidence_map.hpp"
#include "core/evidence_merge.hpp"
#include "flow/delta_wire.hpp"
#include "flow/gap_tracker.hpp"
#include "obs/observability.hpp"
#include "util/shared_slot.hpp"

namespace haystack::vantage {

inline constexpr std::uint32_t kAggregatorMagic = 0x48534147U;  // "HSAG"
inline constexpr std::uint32_t kAggregatorVersion = 1;

/// `source` tag of vantage flight events that reuse generic kinds
/// (kSequenceGap/kSequenceReplay/kExporterRestart): 'v' << 24 | collector.
[[nodiscard]] constexpr std::uint32_t vantage_source(
    std::uint32_t collector) noexcept {
  return 0x76000000U | collector;
}

struct AggregatorConfig {
  core::DetectorConfig detector{};
  /// Sequence reorder window: replays within it are classified kReplay,
  /// farther behind means the collector restarted.
  std::uint32_t reorder_window = 64;
  /// A collector whose merged/staged progress trails the fleet maximum by
  /// more than this many epochs is reported unhealthy.
  std::uint32_t stale_after = 3;
};

/// Outcome of offering one datagram.
struct OfferResult {
  bool accepted = false;
  /// Epochs the offer completed (0 when the barrier did not advance).
  unsigned sealed_epochs = 0;
  /// Reject reason, or "stale" for harmless already-merged retransmits.
  std::string detail;
};

/// Point-in-time snapshot of the merged global state (ISSUE 8). Published
/// with one atomic pointer swap each time the epoch barrier advances (and
/// on restore/clear), so readers grab a complete merge prefix — state as
/// of a sealed epoch, never a half-staged one — with a single published-pointer copy,
/// while offer()/seal keep running under the aggregator mutex. The
/// snapshot stays valid (and keeps answering identically) across
/// collector kill/restart, further merges, and even aggregator
/// destruction: a reader holding one is never blocked.
struct LiveSnapshot {
  /// Last epoch folded into this snapshot; nullopt before the first seal.
  std::optional<util::HourBin> merged_through;
  std::uint64_t epochs_sealed = 0;  ///< barrier advances at publish
  core::Detector::Stats stats{};
  std::shared_ptr<const core::CompiledRuleVersion> compiled;
  core::FlatEvidenceMap<core::Evidence> evidence;

  [[nodiscard]] std::optional<util::HourBin> detection_hour(
      core::SubscriberKey subscriber, core::ServiceId service) const {
    return core::eval_detection_hour(evidence, *compiled, subscriber,
                                     service);
  }
  [[nodiscard]] bool detected(core::SubscriberKey subscriber,
                              core::ServiceId service) const {
    return detection_hour(subscriber, service).has_value();
  }
  [[nodiscard]] const core::Evidence* evidence_row(
      core::SubscriberKey subscriber, core::ServiceId service) const {
    return evidence.find(subscriber, service);
  }
};

class Aggregator {
 public:
  /// `hitlist`/`rules` must outlive the aggregator.
  Aggregator(const core::Hitlist& hitlist, const core::RuleSet& rules,
             const AggregatorConfig& config, obs::Observability* obs = nullptr);

  /// Registers a collector before its first delta. `first_epoch` is the
  /// first hour the collector participates in; the barrier requires it
  /// for every epoch >= first_epoch. first_epoch must not precede the
  /// already-merged watermark.
  void add_collector(std::uint32_t id, util::HourBin first_epoch);

  /// Offers one delta datagram from the channel. Malformed datagrams,
  /// threshold mismatches, unknown collectors/labels, and snapshots are
  /// rejected without touching any state.
  OfferResult offer(std::span<const std::uint8_t> datagram);

  /// Last epoch merged for `id` — the cumulative ack the fleet relays
  /// back to the collector. nullopt before the first merge or for an
  /// unknown id.
  [[nodiscard]] std::optional<util::HourBin> acked_through(
      std::uint32_t id) const;

  /// Encodes a kSnapshot delta of `id`'s merged cumulative state as of
  /// its last merged epoch. Empty when the collector is unknown or has
  /// no merged epoch yet (a restarting collector then simply replays its
  /// whole spool from its first epoch).
  [[nodiscard]] std::vector<std::uint8_t> snapshot_for(std::uint32_t id) const;

  /// Serializes the full aggregator state ("HSAG": global detector as an
  /// embedded interned HSCK checkpoint + per-collector merged state).
  [[nodiscard]] std::vector<std::uint8_t> save() const;

  /// Restores a save() blob. Returns false on ANY malformed input — and
  /// then clears all aggregator state (global and per-collector), per the
  /// cleared-on-failed-restore contract.
  bool restore(std::span<const std::uint8_t> blob,
               std::string* error = nullptr);

  /// Drops all state: global evidence, stats, collectors, watermark.
  void clear();

  // --- queries (all lock; safe concurrently with offer()) ---

  /// Next epoch the barrier will seal, minus one — i.e. the last globally
  /// merged epoch. nullopt before the first seal.
  [[nodiscard]] std::optional<util::HourBin> merged_through() const;

  [[nodiscard]] core::Detector::Stats stats() const;

  /// Copy of the merged global evidence row, if present.
  [[nodiscard]] std::optional<core::Evidence> evidence(
      core::SubscriberKey subscriber, core::ServiceId service) const;

  /// Visits every merged global evidence row (iteration order
  /// unspecified; consumers sort, as with Detector::for_each_evidence).
  void for_each_evidence(
      const std::function<void(core::SubscriberKey, core::ServiceId,
                               const core::Evidence&)>& fn) const;

  /// Hierarchy-aware detection on the merged map.
  [[nodiscard]] std::optional<util::HourBin> detection_hour(
      core::SubscriberKey subscriber, core::ServiceId service) const;

  /// Constant-time merged-state snapshot: never takes the aggregator mutex,
  /// never observes a half-staged epoch (see LiveSnapshot). Never null.
  [[nodiscard]] std::shared_ptr<const LiveSnapshot> live() const {
    return live_.load();
  }

  /// Heartbeat-based health: true while the collector's progress (staged
  /// or merged) is within `stale_after` epochs of the fleet maximum.
  [[nodiscard]] bool healthy(std::uint32_t id) const;

  struct Counters {
    std::uint64_t offered = 0;       ///< datagrams offered
    std::uint64_t rejected = 0;      ///< malformed / mismatched, refused
    std::uint64_t stale = 0;         ///< retransmits of merged epochs
    std::uint64_t duplicates = 0;    ///< seq-replay classifications
    std::uint64_t restarts = 0;      ///< collector restarts detected
    std::uint64_t epochs_sealed = 0; ///< barrier advances
    std::uint64_t rows_merged = 0;   ///< staged rows folded globally
    std::uint64_t delta_bytes = 0;   ///< bytes of accepted datagrams
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct Staged {
    std::vector<flow::DeltaRow> rows;  ///< label resolved into `services`
    std::vector<core::ServiceId> services;  ///< parallel to rows
    core::Detector::Stats stats;       ///< collector-cumulative
  };

  struct CollectorState {
    util::HourBin first_epoch = 0;
    /// Merged cumulative rows — exactly what this collector has shipped
    /// through merged_through (snapshot_for serves these back).
    core::FlatEvidenceMap<core::Evidence> cum;
    core::Detector::Stats cum_stats;  ///< merged cumulative flows/matched
    flow::SequenceTracker seq;
    std::optional<util::HourBin> merged_through;
    std::map<util::HourBin, Staged> staged;
    std::uint32_t restarts = 0;
  };

  OfferResult reject(std::uint32_t collector, std::size_t bytes,
                     std::string reason);
  /// Clones the merged global state into a new LiveSnapshot and swaps it
  /// into live_. Callers hold mu_ (publication points: construction,
  /// barrier advances, restore, clear).
  void publish_live_locked();
  /// Folds every sealable epoch; returns how many were sealed.
  unsigned try_seal();
  void seal_epoch(util::HourBin epoch);
  void refresh_health();
  [[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
      const CollectorState& st, std::uint32_t id) const;

  const core::RuleSet& rules_;
  AggregatorConfig config_;
  obs::Observability* obs_ = nullptr;
  mutable std::mutex mu_;
  core::Detector global_;
  /// Satisfaction predicate per service id (empty critical mask +
  /// required=0xffff for serviceless ids is never consulted: only rows
  /// with rules are folded).
  std::vector<std::optional<core::SatisfyRule>> satisfy_;
  std::map<std::uint32_t, std::unique_ptr<CollectorState>> collectors_;
  /// Last epoch sealed into the global map; the barrier next waits on
  /// last_sealed_+1 (or the earliest first_epoch before the first seal).
  std::optional<util::HourBin> last_sealed_;
  /// Epoch-swapped merge-prefix snapshot (see live()).
  util::SharedSlot<const LiveSnapshot> live_;
  Counters counters_;
  // Registry series (null without obs).
  std::shared_ptr<obs::Counter> m_offered_, m_rejected_, m_stale_,
      m_duplicates_, m_sealed_, m_rows_, m_bytes_;
  std::shared_ptr<obs::Gauge> m_merged_epoch_, m_staged_depth_;
  std::map<std::uint32_t, std::shared_ptr<obs::Gauge>> m_healthy_;
};

}  // namespace haystack::vantage
