// Ablation: passive-DNS coverage vs an ISP resolver feed (Sec. 7.4).
//
// The baseline methodology runs on an external passive-DNS database with
// coverage gaps (15 of the catalog's domains are missing; only 8 are
// recoverable via certificate scans). This bench rebuilds the rule set
// with the resolver-feed pathway added: wire-format DNS responses for the
// gap domains are ingested through dns::ResolverFeed, which repairs the
// database and rescues services the baseline loses.
#include <iostream>

#include "common.hpp"
#include "core/infra_classifier.hpp"
#include "dns/resolver_feed.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  const auto& catalog = world.catalog();
  const auto& backend = world.backend();

  // Baseline: the standard rule set (built from DNSDB + cert scans).
  const core::RuleSet& baseline = world.rules();

  // Resolver feed: replay synthetic resolver responses for every catalog
  // domain (the ISP resolver sees what devices actually ask), on every
  // study day — including the 15 DNSDB-missing domains.
  dns::PassiveDnsDb repaired;
  // Start from the external database contents by re-adding what it knows…
  // simpler and more honest: feed *all* domains through the resolver path.
  dns::ResolverFeed feed{repaired};
  for (const auto& dom : catalog.domains()) {
    feed.allow_sld(dom.fqdn.registrable());
  }
  std::uint64_t messages = 0;
  for (const auto& unit : catalog.units()) {
    for (const auto* dom : catalog.domains_of(unit.id)) {
      for (util::DayBin day = 0; day < util::kStudyDays; ++day) {
        std::vector<dns::WireRecord> answers;
        const auto& hosting = backend.hosting_of(unit.id, dom->index);
        dns::Fqdn owner = dom->fqdn;
        if (hosting.cname.valid()) {
          dns::WireRecord cname;
          cname.name = dom->fqdn;
          cname.type = dns::WireType::kCname;
          cname.ttl = 300;
          cname.target = hosting.cname;
          answers.push_back(cname);
          owner = hosting.cname;
        }
        for (const auto& ip : backend.ips_of(unit.id, dom->index, day)) {
          dns::WireRecord a;
          a.name = owner;
          a.type = dns::WireType::kA;
          a.ttl = 300;
          a.address = ip;
          answers.push_back(a);
        }
        const auto msg = dns::encode_response(
            static_cast<std::uint16_t>(messages), dom->fqdn, answers);
        feed.ingest(msg, day);
        ++messages;
      }
    }
  }
  // The CDN co-tenancy evidence still comes from the external database
  // (a resolver only sees its own customers' queries): merge it in.
  // Here we approximate by reusing the backend's pdns for the tenant
  // names, which the classifier reads through the repaired db only. To
  // keep shared domains classified shared, replay the tenant records too.
  for (const auto& unit : catalog.units()) {
    for (const auto* dom : catalog.domains_of(unit.id)) {
      const auto& hosting = backend.hosting_of(unit.id, dom->index);
      if (!hosting.shared) continue;
      for (const auto& ip : hosting.daily_ips[0]) {
        for (const auto& tenant :
             backend.pdns().domains_on(ip, {0, util::kStudyDays - 1})) {
          repaired.add_a(tenant, ip, 0, util::kStudyDays - 1);
        }
      }
    }
  }

  const core::InfraClassifier classifier{repaired, backend.scans(), 0,
                                         util::kStudyDays - 1};
  const auto with_feed = core::generate_rules(
      simnet::build_service_specs(backend), classifier,
      core::RuleGenConfig{});

  util::print_banner(std::cout,
                     "Ablation: external passive DNS vs ISP resolver feed");
  util::TextTable table;
  table.header({"Metric", "DNSDB + cert scans", "Resolver feed"});
  table.row({"Detection rules", std::to_string(baseline.rules.size()),
             std::to_string(with_feed.rules.size())});
  table.row({"Excluded services", std::to_string(baseline.excluded.size()),
             std::to_string(with_feed.excluded.size())});
  table.row({"Domains without data",
             std::to_string(baseline.stats.unresolved),
             std::to_string(with_feed.stats.unresolved)});
  table.row({"Hitlist entries",
             std::to_string(baseline.hitlist.total_size()),
             std::to_string(with_feed.hitlist.total_size())});
  table.print(std::cout);

  std::cout << "\nResolver feed processed " << util::fmt_count(messages)
            << " DNS responses (" << feed.stats().answers_kept
            << " answers kept). Services rescued by the feed:";
  for (const auto& rule : with_feed.rules) {
    if (baseline.rule_by_name(rule.name) == nullptr) {
      std::cout << ' ' << rule.name;
    }
  }
  std::cout << "\n(The paper's Sec. 7.4: resolver access would simplify "
               "the methodology — at a real privacy cost, which is why "
               "the feed is allowlist-scoped.)\n";
  return 0;
}
