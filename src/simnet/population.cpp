#include "simnet/population.hpp"

#include <algorithm>
#include <utility>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace haystack::simnet {

namespace {
// Subscriber space: 100.64.0.0/10.
constexpr std::uint32_t kSubscriberBase = 0x64400000;
// Lines per regional address pool; each pool spans four /24s (1024 addrs).
constexpr std::uint32_t kLinesPerRegion = 64;
constexpr std::uint32_t kRegionAddrSpan = 1024;
// Total addresses in the /10. Regional pools wrap modulo this span so a
// 15 M-line population still addresses inside 100.64.0.0/10; for lines
// below 262 144 (4096 regions) the wrap is an identity, so small-N
// populations keep their historical addresses bit-for-bit.
constexpr std::uint64_t kSubscriberSpan = 0x400000;

// Per-thread pins keeping the block behind the last devices_of() span
// alive across LRU eviction. Keyed by Population identity so tests
// comparing two instances side by side keep both spans valid.
struct BlockPin {
  const void* population = nullptr;
  std::shared_ptr<const void> block;
};
thread_local std::vector<BlockPin> t_block_pins;
constexpr std::size_t kMaxPins = 16;

void pin_block(const void* population, std::shared_ptr<const void> block) {
  for (BlockPin& pin : t_block_pins) {
    if (pin.population == population) {
      pin.block = std::move(block);
      return;
    }
  }
  if (t_block_pins.size() >= kMaxPins) {
    t_block_pins.erase(t_block_pins.begin());
  }
  t_block_pins.push_back({population, std::move(block)});
}
}  // namespace

Population::Population(const Catalog& catalog,
                       const PopulationConfig& config)
    : catalog_{catalog}, config_{config} {
  if (config_.cache_blocks == 0) config_.cache_blocks = 1;
  // Pre-extract the ownership candidates: real products plus virtual
  // wild-extra devices per unit. Order matters: ownership draws consume
  // the per-line RNG stream in exactly this sequence, which is what keeps
  // lazy regeneration bit-for-bit equal to the old materialized CSR.
  for (const Product& p : catalog.products()) {
    if (p.unit && p.penetration > 0.0) {
      candidates_.push_back({p.id, *p.unit, p.penetration});
    }
  }
  for (const DetectionUnit& u : catalog.units()) {
    if (u.wild_extra_penetration > 0.0) {
      candidates_.push_back({std::nullopt, u.id, u.wild_extra_penetration});
    }
  }
  cache_.reserve(config_.cache_blocks);
}

std::shared_ptr<const Population::Block> Population::build_block(
    std::uint32_t index) const {
  auto block = std::make_shared<Block>();
  block->first_line = index * kBlockLines;
  block->line_span = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(kBlockLines,
                              std::uint64_t{config_.lines} -
                                  block->first_line));
  block->offsets.reserve(block->line_span + 1);
  block->offsets.push_back(0);
  for (std::uint32_t i = 0; i < block->line_span; ++i) {
    const LineId line = block->first_line + i;
    util::Pcg32 rng = util::derive_rng(config_.seed ^ 0x0cc07a11, line, 0);
    bool any = false;
    for (const Candidate& c : candidates_) {
      if (rng.chance(c.penetration)) {
        block->devices.push_back({c.product, c.unit});
        any = true;
      }
    }
    block->offsets.push_back(
        static_cast<std::uint32_t>(block->devices.size()));
    if (any) block->active.push_back(line);
  }
  block->devices.shrink_to_fit();
  block->active.shrink_to_fit();
  return block;
}

std::shared_ptr<const Population::Block> Population::block_for(
    LineId line) const {
  const std::uint32_t index = line / kBlockLines;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  for (CacheSlot& slot : cache_) {
    if (slot.block && slot.index == index) {
      slot.last_use = ++cache_clock_;
      return slot.block;
    }
  }
  std::shared_ptr<const Block> block = build_block(index);
  cached_bytes_.fetch_add(block->bytes(), std::memory_order_relaxed);
  if (cache_.size() < config_.cache_blocks) {
    cache_.push_back({index, ++cache_clock_, block});
  } else {
    auto victim = std::min_element(
        cache_.begin(), cache_.end(),
        [](const CacheSlot& a, const CacheSlot& b) {
          return a.last_use < b.last_use;
        });
    cached_bytes_.fetch_sub(victim->block->bytes(),
                            std::memory_order_relaxed);
    *victim = {index, ++cache_clock_, block};
  }
  return block;
}

std::span<const OwnedDevice> Population::devices_of(LineId line) const {
  std::shared_ptr<const Block> block = block_for(line);
  const std::span<const OwnedDevice> devices = block->devices_of(line);
  pin_block(this, std::move(block));
  return devices;
}

void Population::for_each_active_line(
    const std::function<void(LineId, std::span<const OwnedDevice>)>& fn)
    const {
  const std::uint32_t blocks =
      (config_.lines + kBlockLines - 1) / kBlockLines;
  for (std::uint32_t index = 0; index < blocks; ++index) {
    const std::shared_ptr<const Block> block =
        block_for(static_cast<LineId>(index) * kBlockLines);
    for (const LineId line : block->active) {
      fn(line, block->devices_of(line));
    }
  }
}

std::uint64_t Population::active_line_count() const {
  std::call_once(active_count_once_, [this] {
    std::uint64_t count = 0;
    for_each_active_line(
        [&count](LineId, std::span<const OwnedDevice>) { ++count; });
    active_count_ = count;
  });
  return active_count_;
}

unsigned Population::epoch_of(LineId line, util::DayBin day) const {
  unsigned epoch = 0;
  for (util::DayBin d = 1; d <= day; ++d) {
    util::Pcg32 rng = util::derive_rng(config_.seed ^ 0x707a7e, line, d);
    if (rng.chance(config_.daily_rotation_probability)) ++epoch;
  }
  return epoch;
}

net::IpAddress Population::address_of(LineId line, util::DayBin day) const {
  const std::uint32_t region = line / kLinesPerRegion;
  const unsigned epoch = epoch_of(line, day);
  const std::uint32_t slot = static_cast<std::uint32_t>(
      util::hash_combine(util::fnv1a_u64(line), epoch) % kRegionAddrSpan);
  const std::uint64_t offset =
      (std::uint64_t{region} * kRegionAddrSpan + slot) % kSubscriberSpan;
  return net::IpAddress::v4(kSubscriberBase +
                            static_cast<std::uint32_t>(offset));
}

bool Population::dual_stack(LineId line) const {
  util::Pcg32 rng = util::derive_rng(config_.seed ^ 0xd5a15ac, line, 0);
  return rng.chance(config_.dual_stack_fraction);
}

net::IpAddress Population::address6_of(LineId line) const {
  // One /64 per line under the ISP's 2001:db8:6400::/40.
  return net::IpAddress::v6(0x20010db864000000ULL | line, 1);
}

double Population::device_penetration() const {
  return config_.lines == 0
             ? 0.0
             : static_cast<double>(active_line_count()) /
                   static_cast<double>(config_.lines);
}

std::uint64_t Population::memory_bytes() const {
  std::uint64_t bytes =
      sizeof(Population) + candidates_.capacity() * sizeof(Candidate);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    bytes += cache_.capacity() * sizeof(CacheSlot);
  }
  return bytes + cached_bytes_.load(std::memory_order_relaxed);
}

}  // namespace haystack::simnet
