#include "core/domain_classifier.hpp"

#include <array>

namespace haystack::core {

namespace {

// Name heuristics applied when the knowledge base has no entry: tokens that
// mark well-known generic services.
constexpr std::array<std::string_view, 8> kGenericTokens = {
    "ntp", "time", "analytics", "ads", "doubleclick",
    "cdn", "update.microsoft", "telemetry"};

bool looks_generic(const dns::Fqdn& domain) {
  const std::string& name = domain.str();
  for (const auto token : kGenericTokens) {
    if (name.find(token) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

DomainClass DomainClassifier::classify(const dns::Fqdn& domain) const {
  if (knowledge_.generic_fqdns.contains(domain)) return DomainClass::kGeneric;
  const dns::Fqdn sld = domain.registrable();
  if (knowledge_.manufacturer_slds.contains(sld)) {
    return DomainClass::kPrimary;
  }
  if (knowledge_.generic_slds.contains(sld)) return DomainClass::kGeneric;
  if (knowledge_.support_slds.contains(sld)) return DomainClass::kSupport;
  if (looks_generic(domain)) return DomainClass::kGeneric;
  // Unknown registrable domain: the paper's manual step resolved these by
  // visiting vendor sites; default to Generic so unknowns never become
  // detection features (fail-safe against false positives).
  return DomainClass::kGeneric;
}

DomainClassifier::Stats DomainClassifier::classify_all(
    const std::vector<dns::Fqdn>& domains) const {
  Stats stats;
  stats.total = domains.size();
  for (const auto& d : domains) {
    switch (classify(d)) {
      case DomainClass::kPrimary:
        ++stats.primary;
        break;
      case DomainClass::kSupport:
        ++stats.support;
        break;
      case DomainClass::kGeneric:
        ++stats.generic;
        break;
    }
  }
  return stats;
}

}  // namespace haystack::core
