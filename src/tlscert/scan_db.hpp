// Internet-wide scan dataset — the reproduction's stand-in for Censys.
//
// Stores per-IP HTTPS observations (certificate + banner checksum, valid
// over a day range) and answers the fallback query of Sec. 4.2.2: given a
// domain whose DNS footprint is unknown, find the certificate presented by
// the ground-truth host, then find every IP serving the same certificate
// and banner checksum in the window.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/fqdn.hpp"
#include "net/ip_address.hpp"
#include "tlscert/certificate.hpp"
#include "util/sim_clock.hpp"

namespace haystack::tlscert {

/// One scan observation: `ip` presented `cert` with `banner_checksum` on
/// every day in [first_day, last_day].
struct ScanObservation {
  net::IpAddress ip;
  Certificate cert;
  std::uint64_t banner_checksum = 0;
  util::DayBin first_day = 0;
  util::DayBin last_day = 0;
};

/// Day window (inclusive).
struct ScanWindow {
  util::DayBin first = 0;
  util::DayBin last = 0;
};

/// Queryable scan store.
class CertScanDb {
 public:
  /// Adds one observation.
  void add(ScanObservation obs);

  /// The certificate+banner presented by `ip` in the window (the first
  /// observation when several overlap), or nullopt.
  [[nodiscard]] std::optional<ScanObservation> observation_for(
      const net::IpAddress& ip, ScanWindow window) const;

  /// Every IP that served a certificate matching `domain` (per the paper's
  /// SLD-anchored rule) with the given banner checksum in the window.
  [[nodiscard]] std::vector<net::IpAddress> ips_serving_domain(
      const dns::Fqdn& domain, std::uint64_t banner_checksum,
      ScanWindow window) const;

  /// Every IP presenting the certificate with this fingerprint and banner
  /// checksum in the window.
  [[nodiscard]] std::vector<net::IpAddress> ips_with_fingerprint(
      std::uint64_t fingerprint, std::uint64_t banner_checksum,
      ScanWindow window) const;

  [[nodiscard]] std::size_t observation_count() const noexcept {
    return observations_.size();
  }

 private:
  [[nodiscard]] static bool overlaps(const ScanObservation& obs,
                                     ScanWindow window) noexcept {
    return obs.first_day <= window.last && obs.last_day >= window.first;
  }

  std::vector<ScanObservation> observations_;
  std::unordered_map<net::IpAddress, std::vector<std::size_t>> by_ip_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_fingerprint_;
};

}  // namespace haystack::tlscert
