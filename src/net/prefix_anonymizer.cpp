#include "net/prefix_anonymizer.hpp"

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace haystack::net {

IpAddress PrefixPreservingAnonymizer::anonymize(
    const IpAddress& addr) const noexcept {
  const unsigned width = addr.bit_width();
  std::uint64_t out_hi = 0;
  std::uint64_t out_lo = 0;
  // The PRF input is the *original* prefix consumed so far (the standard
  // Crypto-PAn formulation), packed into two words.
  std::uint64_t prefix_hi = 0;
  std::uint64_t prefix_lo = 0;

  for (unsigned i = 0; i < width; ++i) {
    const std::uint64_t prf = util::splitmix64(
        util::hash_combine(util::hash_combine(key_, prefix_hi),
                           util::hash_combine(prefix_lo, i)));
    const bool flip = (prf & 1U) != 0;
    const bool real_bit = addr.bit(i);
    const bool out_bit = real_bit ^ flip;

    if (i < 64) {
      if (out_bit) out_hi |= std::uint64_t{1} << (63 - i);
      if (real_bit) prefix_hi |= std::uint64_t{1} << (63 - i);
    } else {
      if (out_bit) out_lo |= std::uint64_t{1} << (127 - i);
      if (real_bit) prefix_lo |= std::uint64_t{1} << (127 - i);
    }
  }

  if (addr.is_v4()) {
    // v4 bits were consumed from positions 0..31 of the 32-bit value via
    // IpAddress::bit, which indexes the v4 word directly; out_hi holds
    // them in its top 32 bits.
    return IpAddress::v4(static_cast<std::uint32_t>(out_hi >> 32));
  }
  return IpAddress::v6(out_hi, out_lo);
}

unsigned common_prefix_length(const IpAddress& a,
                              const IpAddress& b) noexcept {
  if (a.family() != b.family()) return 0;
  const unsigned width = a.bit_width();
  for (unsigned i = 0; i < width; ++i) {
    if (a.bit(i) != b.bit(i)) return i;
  }
  return width;
}

}  // namespace haystack::net
