// Intern-table property tests (ISSUE 6 satellite 2).
//
// The interning layer is the contract everything past the decode boundary
// leans on: dense u32 handles, stable across rehash for the table's
// lifetime, name() views that never dangle, and lossless round-trips
// through the HSCK v2 checkpoint format. These tests pin each clause,
// including the degenerate regimes — a million distinct domains (far past
// every rehash threshold) and adversarial serialize() images (truncation,
// duplicates, trailing garbage).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/detector.hpp"
#include "core/intern.hpp"
#include "core/sharded_detector.hpp"

namespace haystack::core {
namespace {

std::string domain(std::uint32_t i) {
  return "dev" + std::to_string(i) + ".iot.example";
}

TEST(InternTable, HandlesAreDenseAndFirstComeFirstServed) {
  InternTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find("absent"), InternTable::kInvalid);

  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(table.intern(domain(i)), i);
  }
  EXPECT_EQ(table.size(), 100u);
  // Re-interning is idempotent: same handle, no growth.
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(table.intern(domain(i)), i);
    EXPECT_EQ(table.find(domain(i)), i);
    EXPECT_EQ(table.name(i), domain(i));
  }
  EXPECT_EQ(table.size(), 100u);
}

TEST(InternTable, HandlesAndViewsSurviveRehash) {
  InternTable table;
  // Record the early handles *and the exact character storage* behind
  // their name() views, then grow the table far past every rehash
  // threshold. Both must be byte-stable (the deque never relocates).
  constexpr std::uint32_t kProbe = 64;
  std::vector<const char*> data_ptrs;
  for (std::uint32_t i = 0; i < kProbe; ++i) {
    EXPECT_EQ(table.intern(domain(i)), i);
    data_ptrs.push_back(table.name(i).data());
  }
  for (std::uint32_t i = kProbe; i < 200'000; ++i) table.intern(domain(i));
  EXPECT_EQ(table.size(), 200'000u);
  for (std::uint32_t i = 0; i < kProbe; ++i) {
    EXPECT_EQ(table.find(domain(i)), i);
    EXPECT_EQ(table.name(i), domain(i));
    EXPECT_EQ(table.name(i).data(), data_ptrs[i]) << "view relocated";
  }
}

TEST(InternTable, MillionDistinctDomains) {
  // Collision behaviour at scale (ISSUE 6 satellite 2): a million
  // distinct domains must intern to exactly the dense range [0, 1M) with
  // no handle ever reused or skipped, and spot lookups must still resolve
  // after the table has rehashed through every growth step.
  constexpr std::uint32_t kCount = 1'000'000;
  InternTable table;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(table.intern(domain(i)), i);
  }
  ASSERT_EQ(table.size(), kCount);
  // Dense spot checks across the whole range (checking all 1M again
  // would double the runtime for no added coverage).
  for (std::uint32_t i = 0; i < kCount; i += 997) {
    ASSERT_EQ(table.find(domain(i)), i);
    ASSERT_EQ(table.name(i), domain(i));
  }
  EXPECT_EQ(table.find(domain(kCount)), InternTable::kInvalid);
}

TEST(InternTable, ClearRestartsHandles) {
  InternTable table;
  table.intern("a");
  table.intern("b");
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find("a"), InternTable::kInvalid);
  EXPECT_EQ(table.intern("b"), 0u);
}

TEST(InternTable, SerializeRestoreRoundTrip) {
  InternTable table;
  for (std::uint32_t i = 0; i < 1000; ++i) table.intern(domain(i));
  // Include the empty string and a max-length-ish name.
  const auto empty_handle = table.intern("");
  const auto long_handle = table.intern(std::string(4096, 'x'));

  std::vector<std::uint8_t> image;
  table.serialize(image);
  // Deterministic bytes: serialization order is handle order, not hash
  // order.
  std::vector<std::uint8_t> image2;
  table.serialize(image2);
  EXPECT_EQ(image, image2);

  InternTable restored;
  std::size_t offset = 0;
  ASSERT_TRUE(restored.restore(image, offset));
  EXPECT_EQ(offset, image.size());
  ASSERT_EQ(restored.size(), table.size());
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(restored.find(domain(i)), i);
  }
  EXPECT_EQ(restored.name(empty_handle), "");
  EXPECT_EQ(restored.name(long_handle), std::string(4096, 'x'));

  // The section is self-delimiting: trailing bytes after it belong to the
  // caller and must be left unconsumed.
  auto padded = image;
  padded.push_back(0xab);
  padded.push_back(0xcd);
  InternTable padded_restore;
  offset = 0;
  ASSERT_TRUE(padded_restore.restore(padded, offset));
  EXPECT_EQ(offset, image.size());
}

TEST(InternTable, RestoreRejectsMalformedImages) {
  InternTable table;
  for (std::uint32_t i = 0; i < 50; ++i) table.intern(domain(i));
  std::vector<std::uint8_t> image;
  table.serialize(image);

  const auto expect_rejected = [](std::vector<std::uint8_t> bad,
                                  const char* what) {
    InternTable victim;
    victim.intern("pre-existing");
    std::size_t offset = 0;
    EXPECT_FALSE(victim.restore(bad, offset)) << what;
    // A failed restore leaves the table cleared, never half-populated.
    EXPECT_EQ(victim.size(), 0u) << what;
  };

  expect_rejected({}, "empty");
  expect_rejected({0x00, 0x00, 0x00}, "short count");
  {
    auto bad = image;
    bad.resize(bad.size() - 1);
    expect_rejected(std::move(bad), "truncated last name");
  }
  {
    auto bad = image;
    bad.resize(5);  // count says 50 entries, bytes end mid-first-entry
    expect_rejected(std::move(bad), "truncated first entry");
  }
  {
    // Duplicate names cannot reproduce distinct handles on re-intern;
    // restore must reject rather than silently alias two handles.
    InternTable dup_source;
    dup_source.intern("same");
    std::vector<std::uint8_t> dup;
    dup_source.serialize(dup);
    // Patch count to 2 and append a second copy of the entry bytes.
    dup[3] = 2;
    const std::vector<std::uint8_t> entry(dup.begin() + 4, dup.end());
    dup.insert(dup.end(), entry.begin(), entry.end());
    expect_rejected(std::move(dup), "duplicate name");
  }
}

// ---------------------------------------------------------------------------
// HSCK v2: evidence keyed by interned rule handles, intern table embedded.

struct Fixture {
  RuleSet rules;
  DetectorConfig config{.threshold = 0.5};

  Fixture() {
    for (ServiceId s = 0; s < 4; ++s) {
      DetectionRule rule;
      rule.service = s;
      rule.name = "vendor-" + std::to_string(s);
      rule.level = Level::kManufacturer;
      rule.monitored_domains = 8;
      for (std::uint16_t m = 0; m < 8; ++m) {
        rule.monitored_indices.push_back(m);
        for (util::DayBin day = 0; day < 2; ++day) {
          rules.hitlist.add(endpoint(s, m), 443, day, {s, m});
        }
      }
      rules.rules.push_back(std::move(rule));
    }
  }

  static net::IpAddress endpoint(ServiceId s, std::uint16_t m) {
    return net::IpAddress::v4(0x0A000000U | (std::uint32_t{s} << 16) | m);
  }

  void feed(Detector& det) const {
    for (SubscriberKey sub = 1; sub <= 40; ++sub) {
      for (std::uint16_t m = 0; m < 8; ++m) {
        const auto s = static_cast<ServiceId>((sub + m) % 4);
        det.observe(sub, endpoint(s, m), 443, 2 + m, (sub + m) % 48);
      }
    }
  }
};

using EvidenceRow =
    std::tuple<SubscriberKey, ServiceId, std::uint64_t, std::uint64_t,
               std::uint16_t, std::uint64_t, util::HourBin, util::HourBin>;

template <typename DetectorT>
std::vector<EvidenceRow> snapshot(const DetectorT& det) {
  std::vector<EvidenceRow> rows;
  det.for_each_evidence(
      [&](SubscriberKey sub, ServiceId svc, const Evidence& ev) {
        rows.emplace_back(sub, svc, ev.mask(0), ev.mask(1), ev.distinct(),
                          ev.packets(), ev.first_seen(), ev.satisfied_hour());
      });
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(CheckpointInterned, V2RoundTripsThroughInternedHandles) {
  const Fixture fx;
  Detector det{fx.rules.hitlist, fx.rules, fx.config};
  fx.feed(det);
  const auto rows = snapshot(det);

  const auto v1 = save_checkpoint(det);
  const auto v2 = save_checkpoint_interned(det);
  ASSERT_NE(v1, v2);
  // Version fields: header is u32 magic then u32 version, big-endian.
  EXPECT_EQ(v1[7], 1);
  EXPECT_EQ(v2[7], 2);
  // Deterministic bytes for identical state.
  EXPECT_EQ(save_checkpoint_interned(det), v2);

  Detector from_v1{fx.rules.hitlist, fx.rules, fx.config};
  Detector from_v2{fx.rules.hitlist, fx.rules, fx.config};
  ASSERT_TRUE(restore_checkpoint(v1, from_v1));
  ASSERT_TRUE(restore_checkpoint(v2, from_v2));
  EXPECT_EQ(snapshot(from_v1), rows);
  EXPECT_EQ(snapshot(from_v2), rows);
  EXPECT_EQ(from_v2.stats().flows, det.stats().flows);
  EXPECT_EQ(from_v2.stats().matched, det.stats().matched);
}

TEST(CheckpointInterned, ShardedV2MatchesFlatAndRepartitions) {
  const Fixture fx;
  Detector flat{fx.rules.hitlist, fx.rules, fx.config};
  fx.feed(flat);

  for (const unsigned shards : {1u, 4u}) {
    ShardedDetector sharded{fx.rules.hitlist, fx.rules, fx.config, shards};
    ASSERT_TRUE(restore_checkpoint(save_checkpoint_interned(flat), sharded));
    EXPECT_EQ(snapshot(sharded), snapshot(flat)) << "shards=" << shards;
    // Identical state serializes to identical v2 bytes regardless of the
    // engine or partitioning that holds it.
    EXPECT_EQ(save_checkpoint_interned(sharded),
              save_checkpoint_interned(flat))
        << "shards=" << shards;
  }
}

TEST(CheckpointInterned, V2SurvivesServiceRenumbering) {
  // The point of keying by rule *name*: a catalog that renumbers its
  // services (here: reversed ids) still restores v2 evidence onto the
  // right rules, where a v1 blob would attach it to the wrong ones.
  const Fixture fx;
  Detector det{fx.rules.hitlist, fx.rules, fx.config};
  fx.feed(det);
  const auto v2 = save_checkpoint_interned(det);

  Fixture renumbered;
  renumbered.rules.rules.clear();
  renumbered.rules.hitlist = Hitlist{};
  for (ServiceId s = 0; s < 4; ++s) {
    DetectionRule rule;
    rule.service = s;
    rule.name = "vendor-" + std::to_string(3 - s);  // reversed naming
    rule.level = Level::kManufacturer;
    rule.monitored_domains = 8;
    for (std::uint16_t m = 0; m < 8; ++m) {
      rule.monitored_indices.push_back(m);
    }
    renumbered.rules.rules.push_back(std::move(rule));
  }
  Detector target{renumbered.rules.hitlist, renumbered.rules,
                  renumbered.config};
  ASSERT_TRUE(restore_checkpoint(v2, target));

  // Evidence that lived on "vendor-K" (old id K) must now sit on the
  // renumbered id 3-K.
  std::vector<EvidenceRow> expected;
  for (auto row : snapshot(det)) {
    std::get<1>(row) = static_cast<ServiceId>(3 - std::get<1>(row));
    expected.push_back(row);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(snapshot(target), expected);
}

TEST(CheckpointInterned, V2RejectsUnknownRulesAndCorruptTables) {
  const Fixture fx;
  Detector det{fx.rules.hitlist, fx.rules, fx.config};
  fx.feed(det);
  const auto v2 = save_checkpoint_interned(det);

  const auto expect_rejected = [&](std::span<const std::uint8_t> bad,
                                   const char* what) {
    Detector victim{fx.rules.hitlist, fx.rules, fx.config};
    fx.feed(victim);
    const auto before = snapshot(victim);
    std::string error;
    EXPECT_FALSE(restore_checkpoint(bad, victim, &error)) << what;
    EXPECT_FALSE(error.empty()) << what;
    EXPECT_EQ(snapshot(victim), before) << what;  // untouched on failure
  };

  // A rule set that knows none of the blob's rule names.
  RuleSet strangers;
  for (ServiceId s = 0; s < 4; ++s) {
    DetectionRule rule;
    rule.service = s;
    rule.name = "other-" + std::to_string(s);
    rule.level = Level::kManufacturer;
    rule.monitored_domains = 8;
    strangers.rules.push_back(std::move(rule));
  }
  Detector stranger{strangers.hitlist, strangers, fx.config};
  std::string error;
  EXPECT_FALSE(restore_checkpoint(v2, stranger, &error));
  EXPECT_FALSE(error.empty());

  {
    auto bad = v2;
    bad.resize(bad.size() - 1);
    expect_rejected(bad, "truncated");
  }
  {
    auto bad = v2;
    bad.push_back(0);
    expect_rejected(bad, "trailing");
  }
  {
    // Corrupt the intern-table count (first field after the 40-byte
    // header+stats prefix): entries can no longer parse coherently.
    auto bad = v2;
    bad[32 + 3] ^= 0x7f;
    expect_rejected(bad, "corrupt intern count");
  }
}

}  // namespace
}  // namespace haystack::core
