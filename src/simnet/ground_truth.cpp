#include "simnet/ground_truth.hpp"

#include <algorithm>
#include <cmath>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace haystack::simnet {

namespace {

// The Home-VP address: one address out of the reserved /28 of the
// ground-truth subscriber line (Sec. 2.1), inside the ISP block.
constexpr std::uint32_t kHomeVpAddr = 0x64400A02;  // 100.64.10.2

constexpr std::uint16_t kEphemeralBase = 32768;

// Units a product's device talks to: its own unit plus all ancestors
// (an Echo Dot speaks both the Amazon Product domains and the AVS domain).
std::vector<const DetectionUnit*> unit_chain(const Catalog& catalog,
                                             const Product& product) {
  std::vector<const DetectionUnit*> chain;
  if (!product.unit) return chain;
  const DetectionUnit* u = &catalog.units()[*product.unit];
  for (;;) {
    chain.push_back(u);
    if (!u->parent) break;
    u = &catalog.units()[*u->parent];
  }
  return chain;
}

}  // namespace

GroundTruthSim::GroundTruthSim(const Backend& backend,
                               const GroundTruthConfig& config)
    : backend_{backend},
      config_{config},
      rates_{backend.catalog(), config.seed, config.domain_rate_sigma},
      home_vp_ip_{net::IpAddress::v4(kHomeVpAddr)} {
  const double active_hours =
      24.0 * (util::kActiveLastDay - util::kActiveFirstDay + 1);
  const double instances =
      static_cast<double>(backend_.catalog().instances().size());
  interactions_per_hour_ =
      static_cast<double>(config_.total_interactions) /
      (active_hours * instances);
}

bool GroundTruthSim::instance_enabled(InstanceId instance) const {
  if (config_.enabled_products.empty()) return true;
  const Product& product =
      backend_.catalog()
          .products()[backend_.catalog().instances()[instance].product];
  for (const auto& name : config_.enabled_products) {
    if (product.name == name) return true;
  }
  return false;
}

bool GroundTruthSim::instance_started(InstanceId instance,
                                      util::HourBin hour) const {
  if (!util::in_active_window(hour)) return true;
  const Instance& inst = backend_.catalog().instances()[instance];
  // Testbed 2 starts at the window open; testbed 1 half a day later.
  const util::HourBin start =
      util::day_start(util::kActiveFirstDay) + (inst.testbed == 1 ? 12 : 0);
  return hour >= start;
}

unsigned GroundTruthSim::interactions_in(InstanceId instance,
                                         util::HourBin hour) const {
  if (!util::in_active_window(hour) || !instance_started(instance, hour)) {
    return 0;
  }
  const Product& product =
      backend_.catalog().products()[backend_.catalog()
                                        .instances()[instance]
                                        .product];
  if (product.idle_only) return 0;  // could not be automated (Table 1)
  util::Pcg32 rng = util::derive_rng(config_.seed ^ 0xac7e, instance, hour);
  return static_cast<unsigned>(rng.poisson(interactions_per_hour_));
}

double GroundTruthSim::domain_idle_rate(UnitId unit,
                                        unsigned domain_index) const {
  return rates_.idle_rate(unit, domain_index);
}

void GroundTruthSim::emit_domain_flows(InstanceId instance,
                                       const DetectionUnit& unit,
                                       const UnitDomain& dom,
                                       util::HourBin hour, double rate,
                                       std::vector<LabeledFlow>& out) const {
  util::Pcg32 rng = util::derive_rng(
      config_.seed ^ 0xf10f,
      util::hash_combine(util::hash_combine(instance, dom.fqdn.hash()),
                         unit.id),
      hour);
  const std::uint64_t packets = rng.poisson(rate);
  if (packets == 0) return;

  const auto& ips = backend_.ips_of(unit.id, dom.index, util::day_of(hour));
  if (ips.empty()) return;

  // Devices keep sessions to one resolved address: the destination is
  // sticky per (instance, domain, day). Different instances land on
  // different addresses, so the Home-VP still accumulates the domain's
  // footprint while per-address packet mass stays concentrated — which is
  // what makes heavy hitters pop out of sampled data (Fig. 6).
  const std::size_t sticky =
      util::hash_combine(util::hash_combine(instance, dom.fqdn.hash()),
                         util::day_of(hour)) %
      ips.size();

  // Split the hour's packets into flows of ~mean_flow_packets each.
  const std::uint64_t per_flow =
      std::max<std::uint64_t>(1, config_.mean_flow_packets / 2 +
                                     rng.bounded(config_.mean_flow_packets));
  std::uint64_t remaining = packets;
  unsigned flow_index = 0;
  while (remaining > 0) {
    const std::uint64_t n = std::min(remaining, per_flow);
    remaining -= n;

    LabeledFlow lf;
    lf.instance = instance;
    lf.unit = unit.id;
    lf.domain_index = dom.index;
    flow::FlowRecord& rec = lf.flow;
    rec.key.src = home_vp_ip_;
    rec.key.dst = ips[sticky];
    rec.key.src_port =
        static_cast<std::uint16_t>(kEphemeralBase + rng.bounded(28000));
    rec.key.dst_port = dom.port;
    const bool udp = dom.port == 123;
    rec.key.proto = udp ? 17 : 6;
    if (!udp) {
      rec.tcp_flags = flow::tcpflags::kSyn | flow::tcpflags::kAck |
                      flow::tcpflags::kPsh | flow::tcpflags::kFin;
    }
    rec.packets = n;
    rec.bytes = n * (120 + rng.bounded(1100));
    rec.start_ms =
        static_cast<std::uint64_t>(hour) * 3'600'000 + rng.bounded(3'300'000);
    rec.end_ms = rec.start_ms + 10'000 + rng.bounded(240'000);
    rec.sampling = 1;
    out.push_back(std::move(lf));
    if (++flow_index > 64) break;  // bound records for pathological rates
  }
}

void GroundTruthSim::emit_generic_flows(InstanceId instance,
                                        util::HourBin hour,
                                        std::vector<LabeledFlow>& out) const {
  const auto& generics = backend_.catalog().generic_domains();
  util::Pcg32 pick = util::derive_rng(config_.seed ^ 0x93a1, instance, 0);
  util::Pcg32 rng = util::derive_rng(config_.seed ^ 0x93a2, instance, hour);
  for (unsigned g = 0; g < config_.generic_domains_per_instance; ++g) {
    const std::size_t index = pick.bounded(
        static_cast<std::uint32_t>(generics.size()));
    // NTP keep-alive cadence for the first pick, web chatter for the rest.
    const bool ntp = g == 0;
    const double rate = ntp ? 100.0 : 60.0;
    const std::uint64_t packets = rng.poisson(rate);
    if (packets == 0) continue;
    const auto& ips = backend_.generic_ips_of(index, util::day_of(hour));
    const std::size_t sticky =
        util::hash_combine(util::hash_combine(instance, index),
                           util::day_of(hour)) %
        ips.size();
    LabeledFlow lf;
    lf.instance = instance;
    lf.unit = std::nullopt;
    lf.domain_index = static_cast<unsigned>(index);
    flow::FlowRecord& rec = lf.flow;
    rec.key.src = home_vp_ip_;
    rec.key.dst = ips[sticky];
    rec.key.src_port =
        static_cast<std::uint16_t>(kEphemeralBase + rng.bounded(28000));
    rec.key.dst_port = ntp ? 123 : 443;
    rec.key.proto = ntp ? 17 : 6;
    if (!ntp) {
      rec.tcp_flags = flow::tcpflags::kSyn | flow::tcpflags::kAck |
                      flow::tcpflags::kPsh;
    }
    rec.packets = packets;
    rec.bytes = packets * (80 + rng.bounded(400));
    rec.start_ms =
        static_cast<std::uint64_t>(hour) * 3'600'000 + rng.bounded(3'500'000);
    rec.end_ms = rec.start_ms + 1'000 + rng.bounded(60'000);
    rec.sampling = 1;
    out.push_back(std::move(lf));
  }
}

void GroundTruthSim::emit_interaction_fanout(
    InstanceId instance, util::HourBin hour, unsigned interactions,
    std::vector<LabeledFlow>& out) const {
  // Functional interactions trigger one-shot content/analytics fetches:
  // short flows to ever-different generic and CDN destinations. They
  // inflate the Home-VP's unique-IP count (the Fig. 5a spikes) while being
  // nearly invisible under 1-in-1000 sampling.
  const auto& generics = backend_.catalog().generic_domains();
  util::Pcg32 rng =
      util::derive_rng(config_.seed ^ 0xfa4007, instance, hour);
  const unsigned fetches = interactions * config_.fanout_per_interaction;
  for (unsigned k = 0; k < fetches; ++k) {
    const std::size_t index =
        rng.bounded(static_cast<std::uint32_t>(generics.size()));
    const auto& ips = backend_.generic_ips_of(index, util::day_of(hour));
    LabeledFlow lf;
    lf.instance = instance;
    lf.unit = std::nullopt;
    lf.domain_index = static_cast<unsigned>(index);
    flow::FlowRecord& rec = lf.flow;
    rec.key.src = home_vp_ip_;
    rec.key.dst = ips[rng.bounded(static_cast<std::uint32_t>(ips.size()))];
    rec.key.src_port =
        static_cast<std::uint16_t>(kEphemeralBase + rng.bounded(28000));
    rec.key.dst_port = 443;
    rec.key.proto = 6;
    rec.tcp_flags = flow::tcpflags::kSyn | flow::tcpflags::kAck |
                    flow::tcpflags::kPsh | flow::tcpflags::kFin;
    rec.packets = 1 + rng.bounded(4);
    rec.bytes = rec.packets * (300 + rng.bounded(900));
    rec.start_ms =
        static_cast<std::uint64_t>(hour) * 3'600'000 + rng.bounded(3'500'000);
    rec.end_ms = rec.start_ms + rng.bounded(5'000);
    rec.sampling = 1;
    out.push_back(std::move(lf));
  }
}

std::vector<LabeledFlow> GroundTruthSim::hour_flows(
    util::HourBin hour) const {
  std::vector<LabeledFlow> out;
  const bool active_window = util::in_active_window(hour);
  const bool idle_window = util::in_idle_window(hour);
  if (!active_window && !idle_window) return out;

  const Catalog& catalog = backend_.catalog();
  const bool boot_hour =
      idle_window && hour == util::day_start(util::kIdleFirstDay);

  for (const Instance& inst : catalog.instances()) {
    if (!instance_enabled(inst.id)) continue;
    if (!instance_started(inst.id, hour)) continue;
    const Product& product = catalog.products()[inst.product];
    const unsigned interactions = interactions_in(inst.id, hour);

    util::Pcg32 duty_rng =
        util::derive_rng(config_.seed ^ 0xd07f, inst.id, hour);

    for (const DetectionUnit* unit : unit_chain(catalog, product)) {
      for (const UnitDomain* dom : catalog.domains_of(unit->id)) {
        const bool primary = dom->role == DomainRole::kPrimary;
        // Duty cycle: a domain is contacted this hour with the unit's duty
        // probability. Interactions force the service's primary domains
        // (control-plane traffic); the boot spike widens duty for all.
        double duty = unit->idle_domain_duty;
        const bool forced = interactions > 0 && primary;
        if (!forced && duty < 1.0 && !duty_rng.chance(duty)) continue;

        double rate = domain_idle_rate(unit->id, dom->index);
        if (interactions > 0) {
          // Each interaction contributes a burst of amplified traffic
          // (Sec. 2.3 power/functional interactions). The burst is
          // control-plane heavy: a random majority of the primary domains
          // carry it; the rest see ordinary load.
          const double burst = primary && duty_rng.chance(0.6)
                                   ? unit->active_multiplier * 2.5
                                   : 1.0;
          rate += domain_idle_rate(unit->id, dom->index) * burst *
                  interactions;
        }
        emit_domain_flows(inst.id, *unit, *dom, hour, rate, out);
      }
    }
    emit_generic_flows(inst.id, hour, out);
    if (interactions > 0) {
      emit_interaction_fanout(inst.id, hour, interactions, out);
    }
    if (boot_hour) {
      // Powering on at the idle-window start produces a one-time burst of
      // one-shot destinations (the Fig. 5a idle spike), not a sustained
      // rate increase.
      emit_interaction_fanout(inst.id, hour, 3, out);
    }
  }
  return out;
}

}  // namespace haystack::simnet
