// Tests for NetFlow v9 options handling: the sampling-rate announcement
// round trip and the per-source registry semantics.
#include <gtest/gtest.h>

#include "flow/options.hpp"

namespace haystack::flow::nf9 {
namespace {

TEST(OptionsTest, AnnouncementRoundtrip) {
  SamplingRegistry registry;
  const auto packet = encode_sampling_announcement(
      {.source_id = 7, .interval = 1000,
       .algorithm = SamplingAlgorithm::kRandom},
      1574000000, 1);
  EXPECT_TRUE(registry.ingest(packet));
  EXPECT_EQ(registry.interval_of(7), 1000u);
  EXPECT_EQ(registry.algorithm_of(7), SamplingAlgorithm::kRandom);
  EXPECT_EQ(registry.known_sources(), 1u);
}

TEST(OptionsTest, SourcesAreIndependent) {
  SamplingRegistry registry;
  registry.ingest(encode_sampling_announcement(
      {.source_id = 1, .interval = 1000,
       .algorithm = SamplingAlgorithm::kRandom},
      1, 1));
  registry.ingest(encode_sampling_announcement(
      {.source_id = 2, .interval = 10000,
       .algorithm = SamplingAlgorithm::kDeterministic},
      1, 1));
  EXPECT_EQ(registry.interval_of(1), 1000u);
  EXPECT_EQ(registry.interval_of(2), 10000u);
  EXPECT_EQ(registry.interval_of(3), std::nullopt);
  EXPECT_EQ(registry.algorithm_of(2), SamplingAlgorithm::kDeterministic);
}

TEST(OptionsTest, ReannouncementUpdates) {
  SamplingRegistry registry;
  registry.ingest(encode_sampling_announcement(
      {.source_id = 5, .interval = 1000,
       .algorithm = SamplingAlgorithm::kRandom},
      1, 1));
  registry.ingest(encode_sampling_announcement(
      {.source_id = 5, .interval = 2000,
       .algorithm = SamplingAlgorithm::kRandom},
      2, 2));
  EXPECT_EQ(registry.interval_of(5), 2000u);
}

TEST(OptionsTest, DataBeforeTemplateIsIgnored) {
  // Strip the options-template flowset from an announcement: the registry
  // must not learn from the orphaned data flowset.
  SamplingRegistry registry;
  const auto full = encode_sampling_announcement(
      {.source_id = 9, .interval = 500,
       .algorithm = SamplingAlgorithm::kRandom},
      1, 1);
  // Parse the flowset boundaries: header is 20 bytes; first flowset is the
  // options template.
  const std::size_t tmpl_len =
      (static_cast<std::size_t>(full[22]) << 8) | full[23];
  std::vector<std::uint8_t> without_template;
  without_template.insert(without_template.end(), full.begin(),
                          full.begin() + 20);
  without_template.insert(without_template.end(),
                          full.begin() + 20 + static_cast<long>(tmpl_len),
                          full.end());
  EXPECT_FALSE(registry.ingest(without_template));
  EXPECT_EQ(registry.interval_of(9), std::nullopt);
}

TEST(OptionsTest, NonV9Rejected) {
  SamplingRegistry registry;
  std::vector<std::uint8_t> junk(20, 0);
  junk[1] = 10;  // IPFIX version
  EXPECT_FALSE(registry.ingest(junk));
}

}  // namespace
}  // namespace haystack::flow::nf9

// --- IPFIX options parity -------------------------------------------------

#include "flow/ipfix.hpp"

namespace haystack::flow::ipfix {
namespace {

TEST(IpfixOptionsTest, SamplingAnnouncementRoundtrip) {
  Collector collector;
  std::vector<FlowRecord> out;
  const auto msg = encode_sampling_options(42, 10000, 1574000000, 0);
  EXPECT_TRUE(collector.ingest(msg, out));
  EXPECT_TRUE(out.empty());  // options data is not flow data
  EXPECT_EQ(collector.stats().options_templates_learned, 1u);
  EXPECT_EQ(collector.announced_sampling(42), 10000u);
  EXPECT_EQ(collector.announced_sampling(43), std::nullopt);
}

TEST(IpfixOptionsTest, ReannouncementUpdatesAndDomainsIndependent) {
  Collector collector;
  std::vector<FlowRecord> out;
  collector.ingest(encode_sampling_options(1, 1000, 1, 0), out);
  collector.ingest(encode_sampling_options(2, 5000, 1, 0), out);
  collector.ingest(encode_sampling_options(1, 2000, 2, 0), out);
  EXPECT_EQ(collector.announced_sampling(1), 2000u);
  EXPECT_EQ(collector.announced_sampling(2), 5000u);
}

TEST(IpfixOptionsTest, OptionsInterleaveWithFlowData) {
  Exporter exporter{{.observation_domain = 9, .sampling = 10000}};
  Collector collector;
  std::vector<FlowRecord> out;
  // Announce, then export flows, then re-announce.
  collector.ingest(encode_sampling_options(9, 10000, 1, 0), out);
  FlowRecord rec;
  rec.key.src = net::IpAddress::v4(1);
  rec.key.dst = net::IpAddress::v4(2);
  rec.packets = 3;
  rec.bytes = 300;
  rec.sampling = 10000;
  for (const auto& m : exporter.export_flows(std::vector{rec}, 2)) {
    EXPECT_TRUE(collector.ingest(m, out));
  }
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(collector.announced_sampling(9), 10000u);
}

}  // namespace
}  // namespace haystack::flow::ipfix
