// Aggregation utilities used by the evaluation harness: unique-entity
// counters, hourly series, and the byte-weighted heavy-hitter view that
// drives the paper's Fig. 6 visibility analysis.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ip_address.hpp"
#include "util/sim_clock.hpp"

namespace haystack::telemetry {

/// Snapshot of one streaming-pipeline stage queue (pipeline::BoundedQueue):
/// depth, throughput, and how often each side stalled — the numbers that
/// show where a deployment is bottlenecked and whether backpressure is
/// engaging (producer_stalls) or the stage is starved (consumer_stalls).
struct StageStats {
  std::uint64_t enqueued = 0;         ///< items accepted into the queue
  std::uint64_t dequeued = 0;         ///< items handed to the consumer
  std::uint64_t producer_stalls = 0;  ///< pushes that blocked on a full queue
  std::uint64_t consumer_stalls = 0;  ///< pops that blocked on an empty queue
  std::uint64_t waves = 0;            ///< consumer wake-ups (adaptive batches)
  std::size_t depth = 0;              ///< items queued at snapshot time
  std::size_t max_depth = 0;          ///< high-water mark (max across shards)
  /// Sum of per-shard high-water marks. For a single queue this equals
  /// max_depth; across an aggregate it bounds the stage's worst-case
  /// simultaneous buffering, which the max alone understates — a stage
  /// whose 8 shard queues each peaked at 900 held up to 7200 items, not
  /// 900. Kept as its own field so operator+= can sum it while max_depth
  /// stays a true max (the two were conflated before ISSUE 5).
  std::size_t high_water_sum = 0;
  std::size_t capacity = 0;

  /// Aggregates shard queues of one stage into a stage-level view.
  /// max-like fields take the max, sum-like fields add — mixing the two
  /// (e.g. summing max_depth) would fabricate a depth no queue ever saw.
  StageStats& operator+=(const StageStats& other) {
    enqueued += other.enqueued;
    dequeued += other.dequeued;
    producer_stalls += other.producer_stalls;
    consumer_stalls += other.consumer_stalls;
    waves += other.waves;
    depth += other.depth;
    max_depth = std::max(max_depth, other.max_depth);
    high_water_sum += other.high_water_sum;
    capacity += other.capacity;
    return *this;
  }
};

/// Set-backed unique counter.
template <typename T>
class UniqueCounter {
 public:
  /// Returns true when the value was new.
  bool add(const T& value) { return set_.insert(value).second; }

  [[nodiscard]] std::size_t count() const noexcept { return set_.size(); }
  [[nodiscard]] bool contains(const T& value) const {
    return set_.contains(value);
  }
  void clear() { set_.clear(); }

  [[nodiscard]] const std::unordered_set<T>& values() const noexcept {
    return set_;
  }

 private:
  std::unordered_set<T> set_;
};

/// Per-IP byte accounting over one time bin; answers "which fraction of the
/// top-X% of service IPs (by bytes) was visible at the sampled vantage?"
class HeavyHitterView {
 public:
  /// Accounts `bytes` to `ip` as seen at the reference (unsampled) vantage.
  void add_reference(const net::IpAddress& ip, std::uint64_t bytes);

  /// Marks `ip` as visible at the sampled vantage.
  void mark_visible(const net::IpAddress& ip);

  /// Fraction of the top-`fraction` reference IPs (by byte count) that were
  /// marked visible. Returns 0 when the reference set is empty.
  [[nodiscard]] double visible_fraction_of_top(double fraction) const;

  /// Fraction of all reference IPs marked visible.
  [[nodiscard]] double visible_fraction() const;

  [[nodiscard]] std::size_t reference_count() const noexcept {
    return bytes_.size();
  }

  void clear();

 private:
  std::unordered_map<net::IpAddress, std::uint64_t> bytes_;
  std::unordered_set<net::IpAddress> visible_;
};

/// Fixed-length per-hour series over the study window.
class HourlySeries {
 public:
  HourlySeries() : values_(util::kStudyHours, 0.0) {}

  void set(util::HourBin hour, double v) { values_.at(hour) = v; }
  void add(util::HourBin hour, double v) { values_.at(hour) += v; }
  [[nodiscard]] double at(util::HourBin hour) const {
    return values_.at(hour);
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  std::vector<double> values_;
};

}  // namespace haystack::telemetry
