// Section 4.3.2 / Sec. 9 coverage summary: how much of the testbed the
// generated rules cover — 20 manufacturer rules, 11 product rules, the
// platform backends, and the "devices from 31 of 40 manufacturers (77%)"
// headline.
#include <iostream>
#include <set>

#include "common.hpp"

int main() {
  using namespace haystack;
  bench::SimWorld world;
  const auto& catalog = world.catalog();
  const auto& rules = world.rules();

  unsigned platform = 0, manufacturer = 0, product = 0;
  std::set<std::string> platform_backends;
  for (const auto& r : rules.rules) {
    switch (r.level) {
      case core::Level::kPlatform: {
        ++platform;
        const auto* unit = catalog.unit_by_name(r.name);
        platform_backends.insert(unit->sld);
        break;
      }
      case core::Level::kManufacturer:
        ++manufacturer;
        break;
      case core::Level::kProduct:
        ++product;
        break;
    }
  }

  // Vendors whose products map to at least one surviving rule.
  std::set<std::string> covered_vendors;
  std::set<std::string> all_vendors;
  std::set<core::ServiceId> ruled;
  for (const auto& r : rules.rules) ruled.insert(r.service);
  for (const auto& p : catalog.products()) {
    all_vendors.insert(p.vendor);
    if (p.unit && ruled.contains(*p.unit)) covered_vendors.insert(p.vendor);
  }

  util::print_banner(std::cout, "Section 4.3.2 / Sec. 9: rule coverage");
  util::TextTable table;
  table.header({"Metric", "Reproduced", "Paper"});
  table.row({"Manufacturer-level rules", std::to_string(manufacturer),
             "20"});
  table.row({"Product-level rules", std::to_string(product), "11"});
  table.row({"Platform-level rules (rows)", std::to_string(platform),
             "6 rows over 3 platforms + AVS"});
  table.row({"Distinct platform backends",
             std::to_string(platform_backends.size()), "4 (AVS, Tuya, "
             "Smarter, Lightify)"});
  table.row({"Manufacturer+product units",
             std::to_string(manufacturer + product),
             "31 => devices from 31/40 manufacturers"});
  table.row({"Vendors with a covering rule",
             std::to_string(covered_vendors.size()) + "/" +
                 std::to_string(all_vendors.size()),
             "77% of manufacturers"});
  table.row({"Excluded services", std::to_string(rules.excluded.size()),
             "7 (Google, Apple TV, Lefun, LG TV, WeMo, Wink, +1)"});
  table.print(std::cout);

  std::cout << "\nUncovered vendors:";
  for (const auto& v : all_vendors) {
    if (!covered_vendors.contains(v)) std::cout << ' ' << v;
  }
  std::cout << "\nCoverage: "
            << util::fmt_percent(double(manufacturer + product) / 40.0)
            << " of the 40 manufacturers via Man.+Pr. rules (paper: 77%)\n";
  return 0;
}
