// Transport port taxonomy used throughout the paper's analysis.
//
// The paper groups observable activity into Web services (80, 443, 8080),
// NTP (123), and everything else (Sec. 3, Fig. 5c), and uses a well-known
// server-port heuristic to separate user IPs from server IPs for
// anonymization (Sec. 2.1).
#pragma once

#include <cstdint>
#include <string_view>

namespace haystack::net {

/// Transport protocol numbers as they appear in flow records.
enum class Proto : std::uint8_t { kTcp = 6, kUdp = 17 };

/// Paper's port classification for Fig. 5(c).
enum class PortClass : std::uint8_t { kWeb, kNtp, kDns, kOther };

/// Classifies a server-side port.
[[nodiscard]] constexpr PortClass classify_port(std::uint16_t port) noexcept {
  switch (port) {
    case 80:
    case 443:
    case 8080:
      return PortClass::kWeb;
    case 123:
      return PortClass::kNtp;
    case 53:
      return PortClass::kDns;
    default:
      return PortClass::kOther;
  }
}

/// Human-readable label for a port class.
[[nodiscard]] constexpr std::string_view port_class_name(
    PortClass c) noexcept {
  switch (c) {
    case PortClass::kWeb:
      return "Web";
    case PortClass::kNtp:
      return "NTP";
    case PortClass::kDns:
      return "DNS";
    case PortClass::kOther:
      return "Other";
  }
  return "?";
}

/// The server-IP heuristic from the paper's ethics section: an endpoint is
/// treated as a server when it sends or receives traffic on a well-known
/// service port. (Membership of the endpoint's AS in a cloud/CDN AS set is
/// checked separately by the AsnRegistry.)
[[nodiscard]] constexpr bool is_well_known_server_port(
    std::uint16_t port) noexcept {
  switch (port) {
    case 80:
    case 443:
    case 8080:   // web
    case 123:    // NTP
    case 53:     // DNS
    case 22:     // ssh
    case 25:     // smtp
    case 465:
    case 587:    // submission
    case 993:    // imaps
    case 995:    // pop3s
    case 1883:   // MQTT
    case 8883:   // MQTT over TLS
    case 5683:   // CoAP
    case 8443:   // alt https
      return true;
    default:
      return false;
  }
}

}  // namespace haystack::net
