// Packet sampling — the mechanism that makes ISP/IXP flow data "sparse".
//
// Routers in the paper sample packets at a consistent 1-in-N rate before
// flow aggregation (NetFlow at the ISP; IPFIX at the IXP at an order of
// magnitude lower rate). We model both the classic systematic
// count-based sampler and the random per-packet sampler, plus the
// statistically equivalent binomial thinning applied directly to an
// aggregate flow record — the form the traffic simulator uses so it never
// has to materialize individual packets of millions of subscriber lines.
#pragma once

#include <cstdint>
#include <optional>

#include "flow/record.hpp"
#include "util/rng.hpp"

namespace haystack::flow {

/// Deterministic 1-in-N systematic count-based sampler (select every Nth
/// packet). N == 1 selects everything.
class SystematicSampler {
 public:
  explicit constexpr SystematicSampler(std::uint32_t interval) noexcept
      : interval_{interval == 0 ? 1 : interval} {}

  /// Returns true when the next packet is selected.
  constexpr bool sample() noexcept {
    if (++count_ >= interval_) {
      count_ = 0;
      return true;
    }
    return false;
  }

  [[nodiscard]] constexpr std::uint32_t interval() const noexcept {
    return interval_;
  }

 private:
  std::uint32_t interval_;
  std::uint32_t count_ = 0;
};

/// Random per-packet sampler with probability 1/N.
class RandomSampler {
 public:
  RandomSampler(std::uint32_t interval, util::Pcg32 rng) noexcept
      : interval_{interval == 0 ? 1 : interval}, rng_{rng} {}

  bool sample() noexcept {
    return interval_ == 1 || rng_.bounded(interval_) == 0;
  }

  [[nodiscard]] std::uint32_t interval() const noexcept { return interval_; }

 private:
  std::uint32_t interval_;
  util::Pcg32 rng_;
};

/// Draws from Binomial(n, p) reproducibly: exact Bernoulli summation for
/// small n, Poisson approximation for small p·n, Gaussian otherwise.
[[nodiscard]] std::uint64_t binomial(util::Pcg32& rng, std::uint64_t n,
                                     double p) noexcept;

/// Applies 1-in-N packet sampling to an aggregate flow.
///
/// The sampled packet count is Binomial(packets, 1/N); bytes are scaled by
/// the realized fraction (every packet of a flow is assumed equal-sized,
/// which is what per-flow average packet size gives a collector anyway).
/// Returns nullopt when no packet of the flow was sampled — the flow is
/// invisible at the vantage point, the central effect the paper studies.
/// TCP flags are retained only with probability proportional to the flags-
/// bearing packets being sampled; we keep the union (collectors do too).
[[nodiscard]] std::optional<FlowRecord> thin_flow(const FlowRecord& full,
                                                  std::uint32_t interval,
                                                  util::Pcg32& rng) noexcept;

}  // namespace haystack::flow
