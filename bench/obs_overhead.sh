#!/usr/bin/env bash
# Instrumentation-overhead measurement (ISSUE 5).
#
# Builds bench/perf_pipeline twice — observability live (the default) and
# compiled out (-DHAYSTACK_OBS_STRIPPED=ON) — runs the streaming-pipeline
# benchmark plus the obs hot-path microbenchmark in both, and merges the
# results into BENCH_obs.json with a per-shard-count overhead summary.
#
#   bench/obs_overhead.sh                 # full run, writes BENCH_obs.json
#   BENCH_REPS=5 bench/obs_overhead.sh    # more repetitions
#
# Acceptance (EXPERIMENTS.md): instrumented throughput within 3% of the
# stripped build on BM_StreamingPipeline at 8 shards.
set -euo pipefail
cd "$(dirname "$0")/.."
jobs="$(nproc)"
reps="${BENCH_REPS:-3}"
filter='BM_StreamingPipeline|BM_ObsHotPath'

build_and_run() {
  local dir="$1"
  shift
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release "$@" >/dev/null
  cmake --build "${dir}" -j "${jobs}" --target perf_pipeline >/dev/null
  "./${dir}/bench/perf_pipeline" \
    --benchmark_filter="${filter}" \
    --benchmark_repetitions="${reps}" \
    --benchmark_report_aggregates_only=true \
    --benchmark_out_format=json \
    --benchmark_out="${dir}/bench_obs.json" \
    --benchmark_min_warmup_time=0.2
}

echo "== instrumented (default build) =="
build_and_run build-bench-obs
echo "== stripped (-DHAYSTACK_OBS_STRIPPED=ON) =="
build_and_run build-bench-obs-stripped -DHAYSTACK_OBS_STRIPPED=ON

python3 - <<'PY'
import json

def load(path):
    with open(path) as f:
        return json.load(f)

def medians(doc):
    out = {}
    for b in doc["benchmarks"]:
        if b.get("aggregate_name") == "median":
            out[b["run_name"]] = b["real_time"]
    return out

inst_doc = load("build-bench-obs/bench_obs.json")
strip_doc = load("build-bench-obs-stripped/bench_obs.json")
inst, strip = medians(inst_doc), medians(strip_doc)

summary = []
for name in sorted(inst):
    if name not in strip or strip[name] == 0:
        continue
    overhead = (inst[name] - strip[name]) / strip[name]
    summary.append({
        "benchmark": name,
        "instrumented_real_time": inst[name],
        "stripped_real_time": strip[name],
        "overhead_fraction": round(overhead, 4),
    })
    print(f"{name}: instrumented {inst[name]:.3f} vs stripped "
          f"{strip[name]:.3f} -> overhead {overhead * 100:+.2f}%")

with open("BENCH_obs.json", "w") as f:
    json.dump({
        "summary": summary,
        "instrumented": inst_doc,
        "stripped": strip_doc,
    }, f, indent=2)
print("wrote BENCH_obs.json")

gate = [s for s in summary
        if s["benchmark"].startswith("BM_StreamingPipeline/8")]
for s in gate:
    if s["overhead_fraction"] > 0.03:
        raise SystemExit(
            f"FAIL: {s['benchmark']} overhead "
            f"{s['overhead_fraction'] * 100:.2f}% exceeds the 3% budget")
print("overhead within the 3% budget at 8 shards")
PY
