#include "tlscert/certificate.hpp"

namespace haystack::tlscert {

bool name_covers_at_sld(const dns::Fqdn& name, const dns::Fqdn& domain) {
  if (!name.valid() || !domain.valid()) return false;
  if (!domain.matches_pattern(name) && name != domain) return false;
  // Anchor check: the concrete part of the pattern must sit within the
  // domain's registrable domain.
  const dns::Fqdn domain_sld = domain.registrable();
  dns::Fqdn concrete = name;
  if (name.str().rfind("*.", 0) == 0) {
    concrete = dns::Fqdn{name.str().substr(2)};
  }
  return concrete == domain_sld || concrete.is_subdomain_of(domain_sld);
}

bool matches_domain(const Certificate& cert, const dns::Fqdn& domain) {
  bool any = false;
  auto check = [&](const dns::Fqdn& name) -> bool {
    // Every listed name must belong to the same registrable domain;
    // an unrelated SAN disqualifies the certificate (paper Sec. 4.2.2).
    const dns::Fqdn domain_sld = domain.registrable();
    dns::Fqdn concrete = name;
    if (name.str().rfind("*.", 0) == 0) {
      concrete = dns::Fqdn{name.str().substr(2)};
    }
    const bool related =
        concrete == domain_sld || concrete.is_subdomain_of(domain_sld);
    if (!related) return false;
    if (name_covers_at_sld(name, domain)) any = true;
    return true;
  };
  if (cert.subject_cn.valid() && !check(cert.subject_cn)) return false;
  for (const auto& san : cert.sans) {
    if (!check(san)) return false;
  }
  return any;
}

}  // namespace haystack::tlscert
