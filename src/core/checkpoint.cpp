#include "core/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <string>
#include <tuple>

#include "core/intern.hpp"
#include "flow/wire.hpp"

namespace haystack::core {

bool resolve_service_label(std::string_view label, const RuleSet& rules,
                           ServiceId& out) {
  if (label.starts_with("svc/")) {
    const std::string_view digits = label.substr(4);
    unsigned value = 0;
    const auto [ptr, ec] = std::from_chars(
        digits.data(), digits.data() + digits.size(), value);
    if (ec != std::errc{} || ptr != digits.data() + digits.size() ||
        value > 0xffffU) {
      return false;
    }
    out = static_cast<ServiceId>(value);
    return true;
  }
  const DetectionRule* rule = rules.rule_by_name(label);
  if (rule == nullptr) return false;
  out = rule->service;
  return true;
}

namespace {

struct Entry {
  SubscriberKey subscriber;
  ServiceId service;
  Evidence evidence;
};

constexpr std::size_t kEntryBytesV1 = 8 + 2 + 8 + 8 + 2 + 8 + 4 + 4;
constexpr std::size_t kEntryBytesV2 = 8 + 4 + 8 + 8 + 2 + 8 + 4 + 4;

template <typename DetectorT>
std::vector<Entry> collect_entries(const DetectorT& detector) {
  std::vector<Entry> entries;
  detector.for_each_evidence(
      [&entries](SubscriberKey sub, ServiceId svc, const Evidence& ev) {
        entries.push_back({sub, svc, ev});
      });
  // Hash-map iteration order is not deterministic across runs; sorting
  // makes identical state produce identical checkpoint bytes.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::tie(a.subscriber, a.service) <
                     std::tie(b.subscriber, b.service);
            });
  return entries;
}

void encode_header(flow::ByteWriter& w, std::uint32_t version,
                   double threshold, const Detector::Stats& stats) {
  w.u32(kCheckpointMagic);
  w.u32(version);
  w.u64(std::bit_cast<std::uint64_t>(threshold));
  w.u64(stats.flows);
  w.u64(stats.matched);
}

void encode_evidence(flow::ByteWriter& w, const Evidence& ev) {
  w.u64(ev.mask[0]);
  w.u64(ev.mask[1]);
  w.u16(ev.distinct);
  w.u64(ev.packets);
  w.u32(ev.first_seen);
  w.u32(ev.satisfied_hour);
}

std::vector<std::uint8_t> encode_v1(const std::vector<Entry>& entries,
                                    double threshold,
                                    const Detector::Stats& stats) {
  flow::ByteWriter w;
  encode_header(w, kCheckpointVersion, threshold, stats);
  w.u64(entries.size());
  for (const auto& e : entries) {
    w.u64(e.subscriber);
    w.u16(e.service);
    encode_evidence(w, e.evidence);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_v2(const std::vector<Entry>& entries,
                                    const RuleSet& rules, double threshold,
                                    const Detector::Stats& stats) {
  // Rule names first, in rule order, matching the handle layout the live
  // SignatureIndex build produces; "svc/<id>" labels for ruleless rows
  // follow. The blob is self-contained either way — restore resolves
  // handles through the embedded table, never the live one.
  InternTable table;
  for (const auto& r : rules.rules) table.intern(r.name);
  std::vector<std::uint32_t> handles;
  handles.reserve(entries.size());
  for (const auto& e : entries) {
    const DetectionRule* rule = rules.rule_for(e.service);
    handles.push_back(rule != nullptr
                          ? table.intern(rule->name)
                          : table.intern("svc/" +
                                         std::to_string(e.service)));
  }

  flow::ByteWriter w;
  encode_header(w, kCheckpointVersionInterned, threshold, stats);
  std::vector<std::uint8_t> table_bytes;
  table.serialize(table_bytes);
  w.bytes(table_bytes);
  w.u64(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    w.u64(entries[i].subscriber);
    w.u32(handles[i]);
    encode_evidence(w, entries[i].evidence);
  }
  return w.take();
}

struct Parsed {
  Detector::Stats stats;
  std::vector<Entry> entries;
};

void parse_evidence(flow::ByteReader& r, Evidence& ev) {
  ev.mask[0] = r.u64();
  ev.mask[1] = r.u64();
  ev.distinct = r.u16();
  ev.packets = r.u64();
  ev.first_seen = r.u32();
  ev.satisfied_hour = r.u32();
}

bool parse_impl(std::span<const std::uint8_t> blob, double threshold,
                const RuleSet& rules, Parsed& out, std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  flow::ByteReader r{blob};
  if (r.u32() != kCheckpointMagic) return fail("bad checkpoint magic");
  const std::uint32_t version = r.u32();
  if (!r.ok()) return fail("truncated checkpoint header");
  if (version != kCheckpointVersion &&
      version != kCheckpointVersionInterned) {
    return fail("unsupported checkpoint version");
  }
  const std::uint64_t threshold_bits = r.u64();
  if (threshold_bits != std::bit_cast<std::uint64_t>(threshold)) {
    return fail("checkpoint written under a different threshold");
  }
  out.stats.flows = r.u64();
  out.stats.matched = r.u64();
  if (!r.ok()) return fail("truncated checkpoint header");

  InternTable table;
  if (version == kCheckpointVersionInterned) {
    std::size_t consumed = 0;
    if (!table.restore(r.rest(), consumed)) {
      return fail("malformed checkpoint intern table");
    }
    r.skip(consumed);
  }

  const std::uint64_t count = r.u64();
  if (!r.ok()) return fail("truncated checkpoint header");
  const std::size_t entry_bytes =
      version == kCheckpointVersion ? kEntryBytesV1 : kEntryBytesV2;
  // Reject counts the blob cannot hold before reserve() turns them into
  // an allocation.
  if (count > r.remaining() / entry_bytes) {
    return fail("truncated checkpoint body");
  }
  if (count * entry_bytes != r.remaining()) {
    return fail("trailing bytes after checkpoint body");
  }
  out.entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry e{};
    e.subscriber = r.u64();
    if (version == kCheckpointVersion) {
      e.service = r.u16();
    } else {
      const std::uint32_t handle = r.u32();
      if (handle >= table.size()) {
        return fail("checkpoint references an unknown intern handle");
      }
      if (!resolve_service_label(table.name(handle), rules, e.service)) {
        return fail("checkpoint references an unknown rule name");
      }
    }
    parse_evidence(r, e.evidence);
    out.entries.push_back(e);
  }
  if (!r.ok() || r.remaining() != 0) return fail("malformed checkpoint body");
  return true;
}

template <typename DetectorT>
std::vector<std::uint8_t> save_with_event(const DetectorT& detector,
                                          obs::FlightRecorder* recorder,
                                          bool interned) {
  const auto entries = collect_entries(detector);
  auto blob = interned
                  ? encode_v2(entries, detector.rules(),
                              detector.config().threshold, detector.stats())
                  : encode_v1(entries, detector.config().threshold,
                              detector.stats());
  if (recorder != nullptr) {
    recorder->record(obs::EventKind::kCheckpointSave, 0, entries.size(),
                     blob.size());
  }
  return blob;
}

template <typename DetectorT>
bool restore_with_event(std::span<const std::uint8_t> blob,
                        DetectorT& detector, std::string* error,
                        obs::FlightRecorder* recorder) {
  Parsed parsed;
  if (!parse_impl(blob, detector.config().threshold, detector.rules(),
                  parsed, error)) {
    if (recorder != nullptr) {
      recorder->record(obs::EventKind::kCheckpointRejected, 0, blob.size());
    }
    return false;
  }
  detector.clear();
  detector.restore_stats(parsed.stats);
  for (const auto& e : parsed.entries) {
    detector.restore_evidence(e.subscriber, e.service, e.evidence);
  }
  if (recorder != nullptr) {
    recorder->record(obs::EventKind::kCheckpointRestore, 0,
                     parsed.entries.size(), blob.size());
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> save_checkpoint(const Detector& detector,
                                          obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder, false);
}

std::vector<std::uint8_t> save_checkpoint(const ShardedDetector& detector,
                                          obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder, false);
}

std::vector<std::uint8_t> save_checkpoint_interned(
    const Detector& detector, obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder, true);
}

std::vector<std::uint8_t> save_checkpoint_interned(
    const ShardedDetector& detector, obs::FlightRecorder* recorder) {
  return save_with_event(detector, recorder, true);
}

bool restore_checkpoint(std::span<const std::uint8_t> blob,
                        Detector& detector, std::string* error,
                        obs::FlightRecorder* recorder) {
  return restore_with_event(blob, detector, error, recorder);
}

bool restore_checkpoint(std::span<const std::uint8_t> blob,
                        ShardedDetector& detector, std::string* error,
                        obs::FlightRecorder* recorder) {
  return restore_with_event(blob, detector, error, recorder);
}

}  // namespace haystack::core
