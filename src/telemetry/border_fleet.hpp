// Multi-router ISP border fleet.
//
// The paper's ISP "uses NetFlow to monitor the traffic flows at all border
// routers in its network, using a consistent sampling rate across all
// routers". This models that deployment faithfully: N border routers, each
// an independent NetFlow v9 exporter with its own source id and template
// state, each announcing its sampling configuration via options data
// (RFC 3954 §6.1). Flows hash onto routers by destination (routing is
// destination-based); the central collector merges the export streams,
// learns per-source sampling from the announcements, and stamps decoded
// records accordingly — the real provenance chain for the sampling rate
// the methodology depends on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flow/netflow_v9.hpp"
#include "flow/options.hpp"
#include "flow/sampler.hpp"
#include "simnet/ground_truth.hpp"
#include "util/rng.hpp"

namespace haystack::telemetry {

/// Fleet configuration.
struct BorderFleetConfig {
  std::uint64_t seed = 2022;
  unsigned routers = 4;
  /// Consistent 1-in-N sampling across the fleet (the paper's setup).
  std::uint32_t sampling = 1000;
  /// Announce sampling via options data every `announce_every` hours.
  unsigned announce_every = 4;
};

/// The fleet plus its central collector.
class BorderRouterFleet {
 public:
  explicit BorderRouterFleet(const BorderFleetConfig& config);

  /// Processes one hour of traffic: routes each flow to its border router,
  /// samples, exports NetFlow v9 (with periodic options announcements),
  /// ingests everything at the central collector, and returns the decoded
  /// surviving flows with labels preserved.
  [[nodiscard]] std::vector<simnet::LabeledFlow> observe(
      const std::vector<simnet::LabeledFlow>& flows, util::HourBin hour);

  /// Sampling state the collector learned from options announcements.
  [[nodiscard]] const flow::nf9::SamplingRegistry& sampling()
      const noexcept {
    return sampling_;
  }

  /// Data-path statistics of the central collector.
  [[nodiscard]] const flow::nf9::CollectorStats& collector_stats()
      const noexcept {
    return collector_.stats();
  }

  /// Router a destination address is handled by.
  [[nodiscard]] unsigned router_of(const net::IpAddress& dst) const;

  [[nodiscard]] const BorderFleetConfig& config() const noexcept {
    return config_;
  }

 private:
  BorderFleetConfig config_;
  std::vector<flow::nf9::Exporter> exporters_;
  flow::nf9::Collector collector_;
  flow::nf9::SamplingRegistry sampling_;
  std::uint32_t announce_sequence_ = 0;
};

}  // namespace haystack::telemetry
