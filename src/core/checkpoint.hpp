// Versioned detector checkpoint/restore (ISSUE 2).
//
// A collector that crashes or restarts must not re-observe weeks of flow
// history to get back to its detection state: the entire per-(subscriber,
// service) evidence map — bitmasks, distinct counts, packet totals, first
// seen and satisfied hours — serializes into a compact binary checkpoint
// and restores bit-for-bit. The differential suite verifies that a
// mid-run save → restore → continue produces exactly the evidence masks
// and detection hours of an uninterrupted run.
//
// Format (big-endian, via flow::ByteWriter):
//
//   u32  magic   "HSCK" (0x4853434b)
//   u32  version (kCheckpointVersion)
//   u64  threshold, IEEE-754 bit pattern of DetectorConfig::threshold
//   u64  stats.flows
//   u64  stats.matched
//   u64  entry count
//   entries, sorted by (subscriber, service) for deterministic bytes:
//     u64 subscriber, u16 service,
//     u64 mask[0], u64 mask[1], u16 distinct, u64 packets,
//     u32 first_seen, u32 satisfied_hour
//
// Version 2 (ISSUE 6, "interned" checkpoints) inserts a self-contained
// intern-table section between the entry count's predecessor (stats) and
// the entries, and keys each evidence row by an interned rule-name handle
// (u32) instead of the raw u16 service id:
//
//   ... header through stats.matched as v1 ...
//   intern table (core/intern.hpp serialize(): u32 count, then per name
//     u16 length + raw bytes, in handle order) — rule names in rule
//     order, plus "svc/<id>" labels for evidence rows whose service has
//     no rule
//   u64  entry count
//   entries, sorted by (subscriber, service):
//     u64 subscriber, u32 rule handle, then evidence fields as v1
//
// Restore resolves each handle back to a service id through the restoring
// detector's own rule set (by rule name), so v2 blobs survive service-id
// renumbering as long as rule names are stable.
//
// Version 3 (ISSUE 9, "compact" checkpoints) keeps the v2 header and
// intern-table sections but groups evidence rows by subscriber and drops
// per-row fields that are almost always absent at the 15 M-line tier:
//
//   ... header + intern table as v2 ...
//   u64  group count (distinct subscribers, ascending)
//   per group: u64 subscriber, u32 row count (>= 1), then rows sorted by
//   (subscriber, service):
//     u32 rule handle
//     u8  flags: bit0 = mask word 1 present, bit1 = packets written as
//         u64 (else u32), bit2 = satisfied_hour present
//     u64 mask[0]; u64 mask[1] when bit0
//     u32 or u64 packets (canonical width: u64 only when > 0xffffffff)
//     u16 first_seen; u16 satisfied_hour when bit2
//
//   `distinct` is not stored in v3 — it is popcount(mask) by detector
//   invariant and the packed Evidence derives it on read. Hours are u16
//   because the study clock is (util::kStudyHours = 336); v1/v2 blobs
//   carrying hours beyond the packed range are rejected rather than
//   narrowed.
//
// Versioning rule: any change to the byte layout or to the meaning of a
// field bumps the version; restore accepts exactly versions 1, 2, and 3
// and rejects anything else (no silent migration — an operator restores
// with the binary that wrote the checkpoint, or replays). The threshold is
// embedded because evidence satisfied under one threshold must not seed a
// detector running another.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/detector.hpp"
#include "core/sharded_detector.hpp"

namespace haystack::core {

/// Resolves an interned evidence label back to a service id via `rules`
/// ("svc/<id>" labels carry the id directly; anything else is a rule
/// name). Returns false for labels the rule set does not know. Shared by
/// v2 checkpoint restore and the vantage delta merge (src/vantage/), which
/// must remap evidence keyed by another process's label strings.
[[nodiscard]] bool resolve_service_label(std::string_view label,
                                         const RuleSet& rules, ServiceId& out);

inline constexpr std::uint32_t kCheckpointMagic = 0x4853434bU;  // "HSCK"
inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr std::uint32_t kCheckpointVersionInterned = 2;
inline constexpr std::uint32_t kCheckpointVersionCompact = 3;

/// Serializes the full evidence state + throughput counters in the v1
/// (raw service-id) layout. A non-null `recorder` gets a kCheckpointSave
/// event (a = entries, b = bytes).
[[nodiscard]] std::vector<std::uint8_t> save_checkpoint(
    const Detector& detector, obs::FlightRecorder* recorder = nullptr);
[[nodiscard]] std::vector<std::uint8_t> save_checkpoint(
    const ShardedDetector& detector, obs::FlightRecorder* recorder = nullptr);

/// Serializes in the v2 layout: evidence rows keyed by interned rule-name
/// handles, with the intern table embedded in the blob (ISSUE 6).
[[nodiscard]] std::vector<std::uint8_t> save_checkpoint_interned(
    const Detector& detector, obs::FlightRecorder* recorder = nullptr);
[[nodiscard]] std::vector<std::uint8_t> save_checkpoint_interned(
    const ShardedDetector& detector, obs::FlightRecorder* recorder = nullptr);

/// Serializes in the v3 compact layout: subscriber-grouped rows with
/// flag-gated optional fields (ISSUE 9) — roughly half the bytes of v2 at
/// scale while restoring to identical evidence state.
[[nodiscard]] std::vector<std::uint8_t> save_checkpoint_compact(
    const Detector& detector, obs::FlightRecorder* recorder = nullptr);
[[nodiscard]] std::vector<std::uint8_t> save_checkpoint_compact(
    const ShardedDetector& detector, obs::FlightRecorder* recorder = nullptr);

/// Restores a checkpoint (v1, v2, or v3) into `detector`, replacing its
/// evidence state. Returns false — leaving the detector untouched — when
/// the blob has a wrong magic/version, was written under a different
/// threshold, is truncated, carries trailing bytes, or (v2) references a
/// rule name the restoring detector's rule set does not know. `error`,
/// when non-null, receives a human-readable reason. A non-null `recorder`
/// gets kCheckpointRestore (a = entries, b = bytes) on success,
/// kCheckpointRejected (a = bytes) on refusal.
bool restore_checkpoint(std::span<const std::uint8_t> blob,
                        Detector& detector, std::string* error = nullptr,
                        obs::FlightRecorder* recorder = nullptr);
bool restore_checkpoint(std::span<const std::uint8_t> blob,
                        ShardedDetector& detector,
                        std::string* error = nullptr,
                        obs::FlightRecorder* recorder = nullptr);

}  // namespace haystack::core
