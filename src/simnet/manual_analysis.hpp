// The "manual analysis" bridge (paper Secs. 4.1/4.3.1).
//
// In the paper, humans turned testbed captures into structured side
// information: which domains belong to which IoT service, which domain is
// critical, how services nest. This adapter performs the same distillation
// from the simulation's catalog, producing exactly the artifacts the core
// methodology consumes:
//
//   * one core::ServiceSpec per detection unit (ServiceId == UnitId),
//   * the core::DomainKnowledge side tables for Sec. 4.1 classification,
//   * the list of every domain observed in ground truth (IoT + generic),
//     which the Sec. 4.1 statistics run over.
//
// core itself never includes simnet headers; the dependency points this
// way only.
#pragma once

#include <vector>

#include "core/domain_classifier.hpp"
#include "core/rules.hpp"
#include "core/service.hpp"
#include "simnet/backend.hpp"

namespace haystack::simnet {

/// One ServiceSpec per detection unit, in unit-id order. Banner checksums
/// come from the backend's ground-truth probe, mirroring how the paper
/// recorded banners for the Censys query.
[[nodiscard]] std::vector<core::ServiceSpec> build_service_specs(
    const Backend& backend);

/// Side tables for the Sec. 4.1 domain classifier.
[[nodiscard]] core::DomainKnowledge build_domain_knowledge(
    const Catalog& catalog);

/// Every domain observed in the ground-truth experiments: all unit domains
/// plus the generic set (524 in the paper).
[[nodiscard]] std::vector<dns::Fqdn> observed_domains(const Catalog& catalog);

/// Convenience: run classification + rule generation end to end against
/// the backend's databases over the full study window.
[[nodiscard]] core::RuleSet build_ruleset(
    const Backend& backend,
    const core::RuleGenConfig& config = core::RuleGenConfig{});

}  // namespace haystack::simnet
