// Unit tests for the flow substrate: byte-stream primitives, the NetFlow v9
// and IPFIX codecs (round trips, template statefulness, malformed input),
// samplers (statistical properties), and the flow cache.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "flow/flow_cache.hpp"
#include "flow/gap_tracker.hpp"
#include "flow/ipfix.hpp"
#include "flow/netflow_v5.hpp"
#include "flow/netflow_v9.hpp"
#include "flow/options.hpp"
#include "flow/sampler.hpp"
#include "flow/wire.hpp"

namespace haystack::flow {
namespace {

FlowRecord make_record(std::uint32_t salt) {
  FlowRecord rec;
  rec.key.src = net::IpAddress::v4(0x64400000 + salt);
  rec.key.dst = net::IpAddress::v4(0x34000000 + salt * 3);
  rec.key.src_port = static_cast<std::uint16_t>(40000 + salt);
  rec.key.dst_port = 443;
  rec.key.proto = 6;
  rec.tcp_flags = tcpflags::kSyn | tcpflags::kAck | tcpflags::kPsh;
  rec.packets = 10 + salt;
  rec.bytes = 1000 + salt * 7;
  rec.start_ms = 1000 * salt;
  rec.end_ms = 1000 * salt + 500;
  rec.sampling = 1000;
  return rec;
}

FlowRecord make_v6_record(std::uint32_t salt) {
  FlowRecord rec = make_record(salt);
  rec.key.src = net::IpAddress::v6(0x20010db800000000ULL, salt);
  rec.key.dst = net::IpAddress::v6(0x20010db800000000ULL, 0x10000ULL + salt);
  return rec;
}

TEST(WireTest, WriterReaderRoundtrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  ByteReader r{w.data()};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefU);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, BigEndianOnTheWire) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(WireTest, ReaderLatchesOnUnderflow) {
  const std::uint8_t bytes[2] = {1, 2};
  ByteReader r{bytes};
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // still failed
}

TEST(WireTest, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u32(42);
  w.patch_u16(0, 0xbeef);
  ByteReader r{w.data()};
  EXPECT_EQ(r.u16(), 0xbeef);
}

TEST(NetFlowV9Test, RoundtripMixedFamilies) {
  nf9::Exporter exporter{{.source_id = 3, .sampling = 1000}};
  nf9::Collector collector;
  std::vector<FlowRecord> input;
  for (std::uint32_t i = 0; i < 50; ++i) {
    input.push_back(i % 3 == 0 ? make_v6_record(i) : make_record(i));
  }
  std::vector<FlowRecord> output;
  for (const auto& packet : exporter.export_flows(input, 1574000000)) {
    EXPECT_TRUE(collector.ingest(packet, output));
  }
  ASSERT_EQ(output.size(), input.size());
  // Records arrive family-grouped per packet; compare as multisets.
  std::sort(input.begin(), input.end());
  std::sort(output.begin(), output.end());
  EXPECT_EQ(input, output);
  EXPECT_EQ(collector.stats().records, 50u);
  EXPECT_GE(collector.stats().templates_learned, 2u);
}

TEST(NetFlowV9Test, DataBeforeTemplateIsBufferedAndRecovered) {
  // Packet 2 carries data only; a fresh collector that never saw packet 1
  // parks the flowset, and decodes it the moment the template arrives.
  nf9::Exporter exporter{{.max_records_per_packet = 4,
                          .template_refresh_packets = 100}};
  std::vector<FlowRecord> input;
  for (std::uint32_t i = 0; i < 8; ++i) input.push_back(make_record(i));
  const auto packets = exporter.export_flows(input, 1574000000);
  ASSERT_GE(packets.size(), 2u);

  nf9::Collector fresh;
  std::vector<FlowRecord> out;
  EXPECT_TRUE(fresh.ingest(packets[1], out));  // no template learned yet
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(fresh.stats().unknown_template_flowsets, 1u);
  EXPECT_EQ(fresh.stats().buffered_flowsets, 1u);
  EXPECT_EQ(fresh.pending_flowsets(), 1u);

  // Learning the template from packet 0 recovers the parked flowset, so
  // this single ingest yields packet 1's 4 records plus packet 0's own 4.
  EXPECT_TRUE(fresh.ingest(packets[0], out));
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(fresh.stats().recovered_flowsets, 1u);
  EXPECT_EQ(fresh.stats().recovered_records, 4u);
  EXPECT_EQ(fresh.pending_flowsets(), 0u);
  EXPECT_EQ(fresh.stats().records, 8u);

  // Re-ingesting packet 1 now decodes directly (dedup is off by default).
  EXPECT_TRUE(fresh.ingest(packets[1], out));
  EXPECT_EQ(out.size(), 12u);
}

TEST(NetFlowV9Test, ZeroLengthUnknownFlowsetParksEmptyBody) {
  // Regression (UBSan finding via fuzz_netflow_v9): a data flowset of
  // declared length 4 — header only, zero body bytes — for an unknown
  // template id parks an *empty* body. Copying that body handed memcpy a
  // null destination pointer (an empty span's data() may be null).
  ByteWriter w;
  w.u16(9);            // version
  w.u16(0);            // record count
  w.u32(12345);        // sysUptime
  w.u32(1574000000);   // unix secs
  w.u32(1);            // sequence
  w.u32(7);            // source id
  w.u16(999);          // data flowset id, never announced
  w.u16(4);            // declared length: flowset header only

  nf9::Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_TRUE(collector.ingest(w.data(), out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(collector.stats().unknown_template_flowsets, 1u);
  EXPECT_EQ(collector.stats().buffered_flowsets, 1u);
  EXPECT_EQ(collector.pending_flowsets(), 1u);

  nf9::Collector batch_collector;
  FlowBatch batch;
  EXPECT_TRUE(batch_collector.ingest_batch(w.data(), batch));
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(batch_collector.stats().buffered_flowsets, 1u);
}

TEST(NetFlowV9Test, TemplatesAreScopedBySourceId) {
  nf9::Exporter exporter_a{{.source_id = 1}};
  nf9::Exporter exporter_b{{.source_id = 2, .template_refresh_packets = 100}};
  // Learn templates only from source 1...
  nf9::Collector collector;
  std::vector<FlowRecord> out;
  std::vector<FlowRecord> input{make_record(1)};
  for (const auto& p : exporter_a.export_flows(input, 1)) {
    collector.ingest(p, out);
  }
  out.clear();
  // ...then source 2's data flowsets must NOT decode with them. Force
  // exporter_b to skip templates by pre-advancing its packet counter.
  std::vector<FlowRecord> warmup{make_record(2)};
  (void)exporter_b.export_flows(warmup, 1);  // packet 0 includes templates
  const auto packets = exporter_b.export_flows(input, 2);
  std::uint64_t unknown_before = collector.stats().unknown_template_flowsets;
  for (const auto& p : packets) collector.ingest(p, out);
  EXPECT_GT(collector.stats().unknown_template_flowsets, unknown_before);
}

TEST(NetFlowV9Test, MalformedPacketRejected) {
  nf9::Collector collector;
  std::vector<FlowRecord> out;
  std::vector<std::uint8_t> junk{0, 9, 0, 1};  // truncated header
  EXPECT_FALSE(collector.ingest(junk, out));
  EXPECT_EQ(collector.stats().malformed_packets, 1u);
  // Wrong version.
  std::vector<std::uint8_t> v5(20, 0);
  v5[1] = 5;
  EXPECT_FALSE(collector.ingest(v5, out));
}

TEST(NetFlowV9Test, TemplateFieldLengthMismatchDoesNotDesync) {
  // A template that declares PROTOCOL with length 2 (RFC encoding is 1
  // byte). The decoder must skip the field at its *declared* length so the
  // following fields stay aligned, instead of silently mis-reading the
  // record with a one-byte shift.
  ByteWriter p;
  p.u16(9);          // version
  p.u16(2);          // count: template + data
  p.u32(1000);       // uptime
  p.u32(1574000000); // export secs
  p.u32(0);          // sequence
  p.u32(1);          // source id
  // Template flowset: id 300, 3 fields.
  p.u16(0);
  p.u16(4 + 4 + 3 * 4);  // flowset length
  p.u16(300);
  p.u16(3);
  p.u16(static_cast<std::uint16_t>(nf9::FieldType::kProtocol));
  p.u16(2);  // wrong: wire encoding is 1 byte
  p.u16(static_cast<std::uint16_t>(nf9::FieldType::kIpv4SrcAddr));
  p.u16(4);
  p.u16(static_cast<std::uint16_t>(nf9::FieldType::kL4DstPort));
  p.u16(2);
  // Data flowset: one record: proto (2 bytes), src, dst port.
  p.u16(300);
  p.u16(4 + 2 + 4 + 2);
  p.u16(0x1100);  // would decode as 17 if misread at 1 byte
  p.u32(0x0a010203);
  p.u16(8883);

  nf9::Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_TRUE(collector.ingest(p.data(), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key.proto, 6);  // skipped: FlowKey default, not 17
  EXPECT_EQ(out[0].key.src, net::IpAddress::v4(0x0a010203));
  EXPECT_EQ(out[0].key.dst_port, 8883);
}

TEST(NetFlowV9Test, TemplateFieldCountExceedingBodyRejected) {
  // A template flowset claiming 0xffff fields in a 12-byte body must be
  // rejected before any allocation sized from the count.
  ByteWriter p;
  p.u16(9);
  p.u16(1);
  p.u32(1000);
  p.u32(1574000000);
  p.u32(0);
  p.u32(1);
  p.u16(0);    // template flowset
  p.u16(12);   // flowset length: header + tid + count only
  p.u16(300);
  p.u16(0xffff);  // absurd field count, no specs follow
  nf9::Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_FALSE(collector.ingest(p.data(), out));
  EXPECT_EQ(collector.stats().malformed_packets, 1u);
}

TEST(NetFlowV9Test, EmptyInputStillEmitsTemplatePacket) {
  nf9::Exporter exporter{{}};
  const auto packets = exporter.export_flows({}, 1574000000);
  ASSERT_EQ(packets.size(), 1u);
  nf9::Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_TRUE(collector.ingest(packets[0], out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(collector.stats().templates_learned, 2u);
}

TEST(IpfixTest, RoundtripMixedFamilies) {
  ipfix::Exporter exporter{{.observation_domain = 9, .sampling = 10000}};
  ipfix::Collector collector;
  std::vector<FlowRecord> input;
  for (std::uint32_t i = 0; i < 60; ++i) {
    FlowRecord rec = i % 4 == 0 ? make_v6_record(i) : make_record(i);
    rec.sampling = 10000;
    rec.start_ms = 0x123456789aULL + i;  // exercise 64-bit timestamps
    rec.end_ms = rec.start_ms + 100;
    input.push_back(rec);
  }
  std::vector<FlowRecord> output;
  for (const auto& msg : exporter.export_flows(input, 1574000000)) {
    EXPECT_TRUE(collector.ingest(msg, output));
  }
  ASSERT_EQ(output.size(), input.size());
  std::sort(input.begin(), input.end());
  std::sort(output.begin(), output.end());
  EXPECT_EQ(input, output);
  EXPECT_EQ(collector.stats().sequence_gaps, 0u);
}

TEST(IpfixTest, MessageLengthIsValidated) {
  ipfix::Exporter exporter{{}};
  std::vector<FlowRecord> input{make_record(1)};
  auto messages = exporter.export_flows(input, 1);
  ASSERT_FALSE(messages.empty());
  auto bad = messages[0];
  bad[2] ^= 0x40;  // corrupt total length
  ipfix::Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_FALSE(collector.ingest(bad, out));
  EXPECT_EQ(collector.stats().malformed_messages, 1u);
}

TEST(IpfixTest, SequenceGapDetected) {
  ipfix::Exporter exporter{{.max_records_per_message = 2,
                            .template_refresh_messages = 1000}};
  std::vector<FlowRecord> input;
  for (std::uint32_t i = 0; i < 8; ++i) input.push_back(make_record(i));
  // First export message 0 with templates.
  auto all = exporter.export_flows(input, 1);
  ASSERT_GE(all.size(), 3u);
  ipfix::Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_TRUE(collector.ingest(all[0], out));
  // Drop message 1: the sequence number of message 2 reveals the loss.
  EXPECT_TRUE(collector.ingest(all[2], out));
  EXPECT_EQ(collector.stats().sequence_gaps, 1u);
}

TEST(IpfixTest, VariableLengthAndEnterpriseFieldsSkipped) {
  // Hand-craft a template with a variable-length field and an
  // enterprise-numbered field around a sourceIPv4Address.
  ByteWriter m;
  m.u16(10);
  const std::size_t total_off = m.size();
  m.u16(0);
  m.u32(1574000000);
  m.u32(0);
  m.u32(77);
  // Template set: id 400, 3 fields: varlen(IE 210, len 65535),
  // enterprise(IE 100, len 2, PEN 9999), sourceIPv4Address(IE 8, len 4).
  const std::size_t set_off = m.size() + 2;
  m.u16(2);
  m.u16(0);
  m.u16(400);
  m.u16(3);
  m.u16(210);
  m.u16(0xffff);
  m.u16(0x8000U | 100);
  m.u16(2);
  m.u32(9999);
  m.u16(8);
  m.u16(4);
  m.patch_u16(set_off, static_cast<std::uint16_t>(m.size() - (set_off - 2)));
  // Data set: one record: varlen len=3 "abc", enterprise 2 bytes, IPv4.
  const std::size_t data_off = m.size() + 2;
  m.u16(400);
  m.u16(0);
  m.u8(3);
  m.u8('a');
  m.u8('b');
  m.u8('c');
  m.u16(0xcafe);
  m.u32(0x01020304);
  m.patch_u16(data_off,
              static_cast<std::uint16_t>(m.size() - (data_off - 2)));
  m.patch_u16(total_off, static_cast<std::uint16_t>(m.size()));

  ipfix::Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_TRUE(collector.ingest(m.data(), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key.src, net::IpAddress::v4(0x01020304));
}

TEST(IpfixTest, TemplateFieldLengthMismatchDoesNotDesync) {
  // destinationTransportPort declared 4 bytes (RFC encoding is 2): the
  // decoder must skip it at the declared length and keep the following
  // sourceIPv4Address aligned.
  ByteWriter m;
  m.u16(10);
  const std::size_t total_off = m.size();
  m.u16(0);
  m.u32(1574000000);
  m.u32(0);
  m.u32(42);
  // Template set: id 500, 2 fields.
  m.u16(2);
  m.u16(4 + 4 + 2 * 4);
  m.u16(500);
  m.u16(2);
  m.u16(11);  // destinationTransportPort
  m.u16(4);   // wrong width
  m.u16(8);   // sourceIPv4Address
  m.u16(4);
  // Data set: one record.
  m.u16(500);
  m.u16(4 + 4 + 4);
  m.u32(0x1bb30000);  // would misdecode as port 7091 + shifted address
  m.u32(0x0a090807);
  m.patch_u16(total_off, static_cast<std::uint16_t>(m.size()));

  ipfix::Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_TRUE(collector.ingest(m.data(), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key.dst_port, 0);  // skipped, not misdecoded
  EXPECT_EQ(out[0].key.src, net::IpAddress::v4(0x0a090807));
}

TEST(IpfixTest, TemplateFieldCountExceedingBodyRejected) {
  ByteWriter m;
  m.u16(10);
  const std::size_t total_off = m.size();
  m.u16(0);
  m.u32(1574000000);
  m.u32(0);
  m.u32(42);
  m.u16(2);       // template set
  m.u16(8);       // set length: id + count only, no specs
  m.u16(500);
  m.u16(0xffff);  // absurd field count
  m.patch_u16(total_off, static_cast<std::uint16_t>(m.size()));
  ipfix::Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_FALSE(collector.ingest(m.data(), out));
  EXPECT_EQ(collector.stats().malformed_messages, 1u);
}

// The shared sequence tracker behind the v5/v9/IPFIX collectors: 32-bit
// wraparound arithmetic, gap/replay/restart classification, multi-unit
// commits (IPFIX counts records, v5 counts flows, v9 counts packets).
TEST(GapTrackerTest, InOrderAndGapCounting) {
  SequenceTracker t{64};
  auto o = t.classify(100);
  EXPECT_EQ(o.event, SequenceEvent::kFirst);
  t.commit(100, 1, o);
  o = t.classify(101);
  EXPECT_EQ(o.event, SequenceEvent::kInOrder);
  t.commit(101, 1, o);
  o = t.classify(105);  // 102..104 lost
  EXPECT_EQ(o.event, SequenceEvent::kGap);
  EXPECT_EQ(o.lost_units, 3u);
  t.commit(105, 1, o);
  EXPECT_EQ(t.lost(), 3u);
  EXPECT_EQ(t.received(), 3u);
  EXPECT_DOUBLE_EQ(t.loss_fraction(), 0.5);
}

TEST(GapTrackerTest, ReplayCreditsLossBack) {
  SequenceTracker t{64};
  auto o = t.classify(0);
  t.commit(0, 1, o);
  o = t.classify(2);  // packet 1 presumed lost
  EXPECT_EQ(o.event, SequenceEvent::kGap);
  t.commit(2, 1, o);
  EXPECT_EQ(t.lost(), 1u);
  o = t.classify(1);  // ...but it was only reordered
  EXPECT_EQ(o.event, SequenceEvent::kReplay);
  t.commit(1, 1, o);
  EXPECT_EQ(t.lost(), 0u);
  EXPECT_EQ(t.received(), 3u);
  // The replay does not move the expectation backwards.
  o = t.classify(3);
  EXPECT_EQ(o.event, SequenceEvent::kInOrder);
}

TEST(GapTrackerTest, WraparoundIsSeamless) {
  SequenceTracker t{64};
  auto o = t.classify(0xffffffffU);
  t.commit(0xffffffffU, 1, o);
  o = t.classify(0);  // 0xffffffff + 1 wraps to 0
  EXPECT_EQ(o.event, SequenceEvent::kInOrder);
  t.commit(0, 1, o);
  o = t.classify(5);  // gap of 5 straddling nothing special
  EXPECT_EQ(o.event, SequenceEvent::kGap);
  EXPECT_EQ(o.lost_units, 4u);
  t.commit(5, 1, o);
  o = t.classify(0xfffffffeU);  // far backwards across the wrap => replay
  EXPECT_EQ(o.event, SequenceEvent::kReplay);
}

TEST(GapTrackerTest, MultiUnitWraparound) {
  // v5-style: sequence counts flows, packets carry up to 30 each.
  SequenceTracker t{256};
  auto o = t.classify(0xfffffff0U);
  t.commit(0xfffffff0U, 30, o);  // next expected: 0xe mod 2^32
  o = t.classify(0x0000000eU);
  EXPECT_EQ(o.event, SequenceEvent::kInOrder);
  t.commit(0x0000000eU, 30, o);
  o = t.classify(0x0000004aU);  // 30 flows lost after the boundary run
  EXPECT_EQ(o.event, SequenceEvent::kGap);
  EXPECT_EQ(o.lost_units, 30u);
}

TEST(GapTrackerTest, FarBackwardJumpIsRestart) {
  SequenceTracker t{64};
  auto o = t.classify(10'000);
  t.commit(10'000, 1, o);
  o = t.classify(3);  // 9998 behind: beyond any reorder window
  EXPECT_EQ(o.event, SequenceEvent::kRestart);
  t.reset();
  o = t.classify(3);
  EXPECT_EQ(o.event, SequenceEvent::kFirst);
  // reset() forgets the stream position only: the health counters are
  // cumulative across restarts, so the loss estimate spans incarnations.
  EXPECT_EQ(t.lost(), 0u);
  EXPECT_EQ(t.received(), 1u);
}

TEST(GapTrackerTest, RecoveryCreditsAndResync) {
  // A parked-set recovery: the records were received all along, they just
  // decoded late. They count as received, and the expectation jumps past
  // the sequence space they occupy so the next datagram reports no
  // phantom gap.
  SequenceTracker t{64};
  auto o = t.classify(0);
  t.commit(0, 10, o);
  EXPECT_EQ(t.received(), 10u);
  t.credit_recovered(4);  // 4 records decoded late from a parked set
  EXPECT_EQ(t.received(), 14u);
  t.advance_past(14);  // ...occupying sequence space 10..13
  o = t.classify(14);
  EXPECT_EQ(o.event, SequenceEvent::kInOrder);
  t.advance_past(5);  // backwards jump is ignored
  o = t.classify(14);
  EXPECT_EQ(o.event, SequenceEvent::kInOrder);
}

TEST(DeduperTest, SuppressesWithinWindowOnly) {
  DatagramDeduper dedup{2};
  const std::vector<std::uint8_t> a{1, 2, 3};
  const std::vector<std::uint8_t> b{4, 5, 6};
  const std::vector<std::uint8_t> c{7, 8, 9};
  EXPECT_FALSE(dedup.seen_before(a));
  EXPECT_TRUE(dedup.seen_before(a));
  EXPECT_FALSE(dedup.seen_before(b));
  EXPECT_FALSE(dedup.seen_before(c));  // evicts a from the 2-deep ring
  EXPECT_FALSE(dedup.seen_before(a));  // a forgotten => passes again
}

TEST(DeduperTest, WindowZeroDisables) {
  DatagramDeduper dedup{0};
  const std::vector<std::uint8_t> a{1, 2, 3};
  EXPECT_FALSE(dedup.seen_before(a));
  EXPECT_FALSE(dedup.seen_before(a));
}

TEST(NetFlowV9Test, DuplicateDatagramSuppressed) {
  nf9::Exporter exporter{{.source_id = 5}};
  std::vector<FlowRecord> input{make_record(1), make_record(2)};
  const auto packets = exporter.export_flows(input, 1574000000);
  nf9::Collector collector{nf9::CollectorConfig{.dedup_window = 16}};
  std::vector<FlowRecord> out;
  for (const auto& p : packets) EXPECT_TRUE(collector.ingest(p, out));
  const auto records_before = collector.stats().records;
  for (const auto& p : packets) EXPECT_TRUE(collector.ingest(p, out));
  EXPECT_EQ(collector.stats().records, records_before);  // no double count
  EXPECT_EQ(collector.stats().duplicate_packets, packets.size());
}

TEST(NetFlowV9Test, SequenceGapAndLossEstimate) {
  nf9::Exporter exporter{{.max_records_per_packet = 1,
                          .template_refresh_packets = 1}};
  std::vector<FlowRecord> input;
  for (std::uint32_t i = 0; i < 5; ++i) input.push_back(make_record(i));
  const auto packets = exporter.export_flows(input, 1574000000);
  ASSERT_EQ(packets.size(), 5u);
  nf9::Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_TRUE(collector.ingest(packets[0], out));
  EXPECT_TRUE(collector.ingest(packets[3], out));  // 1 and 2 lost
  EXPECT_TRUE(collector.ingest(packets[4], out));
  EXPECT_EQ(collector.stats().sequence_gaps, 1u);
  EXPECT_EQ(collector.stats().estimated_lost_packets, 2u);
  const auto health = collector.health(1);  // default source id
  EXPECT_EQ(health.lost_units, 2u);
  EXPECT_EQ(health.received_units, 3u);
  EXPECT_GT(collector.estimated_loss(), 0.0);
}

TEST(NetFlowV9Test, ExporterRestartResetsTemplateState) {
  // Exporter A announces templates, then "crashes". Its replacement (same
  // source id, sequence reset, fresh boot time) re-announces; the
  // collector must detect the restart, drop the stale templates, and
  // decode the new stream.
  nf9::Exporter first{{.source_id = 9, .template_refresh_packets = 1}};
  std::vector<FlowRecord> input{make_record(1), make_record(2)};
  nf9::Collector collector;
  std::vector<FlowRecord> out;
  // Advance the first incarnation past the reorder window so the restart
  // is visible from the sequence alone.
  for (int i = 0; i < 70; ++i) {
    for (const auto& p : first.export_flows(input, 1574000000 + i)) {
      EXPECT_TRUE(collector.ingest(p, out));
    }
  }
  nf9::Exporter second{{.source_id = 9, .template_refresh_packets = 1,
                        .boot_unix_secs = 1574010000}};
  out.clear();
  for (const auto& p : second.export_flows(input, 1574010000)) {
    EXPECT_TRUE(collector.ingest(p, out));
  }
  EXPECT_EQ(collector.stats().exporter_restarts, 1u);
  EXPECT_EQ(out.size(), input.size());  // new stream decodes cleanly
  EXPECT_EQ(collector.health(9).restarts, 1u);
}

TEST(NetFlowV9Test, UptimeRegressionDetectsRestartInsideReorderWindow) {
  // Only a handful of packets before the crash: the new sequence lands
  // inside the reorder window, so the sysUptime regression is the only
  // restart signal.
  nf9::Exporter first{{.source_id = 9, .template_refresh_packets = 1}};
  std::vector<FlowRecord> input{make_record(1)};
  nf9::Collector collector;
  std::vector<FlowRecord> out;
  for (const auto& p : first.export_flows(input, 1574000000)) {
    EXPECT_TRUE(collector.ingest(p, out));
  }
  nf9::Exporter second{{.source_id = 9, .template_refresh_packets = 1,
                        .boot_unix_secs = 1574003600}};
  for (const auto& p : second.export_flows(input, 1574003600)) {
    EXPECT_TRUE(collector.ingest(p, out));
  }
  EXPECT_EQ(collector.stats().exporter_restarts, 1u);
}

TEST(NetFlowV5Test, SequenceRestartDetected) {
  nf5::Exporter first{{}};
  std::vector<FlowRecord> input;
  for (std::uint32_t i = 0; i < 40; ++i) input.push_back(make_record(i));
  nf5::Collector collector;
  std::vector<FlowRecord> out;
  // Push the flow sequence far past the v5 reorder window (256 flows).
  for (int round = 0; round < 10; ++round) {
    for (const auto& p : first.export_flows(input, 1574000000 + round)) {
      EXPECT_TRUE(collector.ingest(p, out));
    }
  }
  nf5::Exporter second{{}};  // fresh process: sequence restarts at 0
  for (const auto& p : second.export_flows(input, 1574001000)) {
    EXPECT_TRUE(collector.ingest(p, out));
  }
  EXPECT_EQ(collector.stats().exporter_restarts, 1u);
  EXPECT_EQ(collector.health().restarts, 1u);
}

TEST(OptionsTest, ZeroSamplingIntervalClampedAndCounted) {
  nf9::SamplingRegistry registry;
  registry.ingest(nf9::encode_sampling_announcement(
      {.source_id = 44, .interval = 0}, 1574000000, 0));
  ASSERT_TRUE(registry.interval_of(44).has_value());
  EXPECT_EQ(*registry.interval_of(44), 1u);  // clamped, not taken literally
  EXPECT_EQ(registry.zero_interval_announcements(), 1u);

  ipfix::Collector collector;
  std::vector<FlowRecord> out;
  EXPECT_TRUE(collector.ingest(
      ipfix::encode_sampling_options(77, 0, 1574000000, 0), out));
  ASSERT_TRUE(collector.announced_sampling(77).has_value());
  EXPECT_EQ(*collector.announced_sampling(77), 1u);
  EXPECT_EQ(collector.stats().zero_sampling_announcements, 1u);
}

TEST(SamplerTest, SystematicSelectsExactFraction) {
  SystematicSampler sampler{10};
  int selected = 0;
  for (int i = 0; i < 1000; ++i) {
    if (sampler.sample()) ++selected;
  }
  EXPECT_EQ(selected, 100);
  SystematicSampler all{1};
  EXPECT_TRUE(all.sample());
}

TEST(SamplerTest, RandomSamplerApproximatesRate) {
  RandomSampler sampler{100, util::Pcg32{5, 5}};
  int selected = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    if (sampler.sample()) ++selected;
  }
  EXPECT_NEAR(static_cast<double>(selected) / kN, 0.01, 0.002);
}

TEST(SamplerTest, BinomialMoments) {
  util::Pcg32 rng{31, 7};
  // Small-n exact path.
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    sum += static_cast<double>(binomial(rng, 20, 0.3));
  }
  EXPECT_NEAR(sum / 20000, 6.0, 0.15);
  // Large-n approximation paths.
  sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    sum += static_cast<double>(binomial(rng, 100000, 0.001));
  }
  EXPECT_NEAR(sum / 20000, 100.0, 2.0);
  EXPECT_EQ(binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(binomial(rng, 10, 0.0), 0u);
  EXPECT_EQ(binomial(rng, 10, 1.0), 10u);
}

TEST(SamplerTest, ThinFlowVisibilityMatchesTheory) {
  // P(visible) = 1 - (1-1/N)^packets.
  util::Pcg32 rng{77, 3};
  FlowRecord rec = make_record(1);
  rec.packets = 1000;
  rec.bytes = 1000 * 600;
  constexpr std::uint32_t kInterval = 1000;
  int visible = 0;
  std::uint64_t sampled_packets = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (const auto thin = thin_flow(rec, kInterval, rng)) {
      ++visible;
      sampled_packets += thin->packets;
      EXPECT_GE(thin->packets, 1u);
      EXPECT_EQ(thin->sampling, kInterval);
    }
  }
  const double p_visible = 1.0 - std::pow(1.0 - 1.0 / kInterval, 1000.0);
  EXPECT_NEAR(static_cast<double>(visible) / kTrials, p_visible, 0.02);
  // Unconditional mean of sampled packets = packets/N.
  EXPECT_NEAR(static_cast<double>(sampled_packets) / kTrials, 1.0, 0.05);
}

TEST(SamplerTest, ThinFlowIdentityAtIntervalOne) {
  util::Pcg32 rng{1, 1};
  const FlowRecord rec = make_record(5);
  const auto thin = thin_flow(rec, 1, rng);
  ASSERT_TRUE(thin.has_value());
  EXPECT_EQ(thin->packets, rec.packets);
  EXPECT_EQ(thin->bytes, rec.bytes);
}

TEST(FlowCacheTest, AggregatesPacketsIntoFlow) {
  FlowCache cache{{.active_timeout_ms = 60'000, .idle_timeout_ms = 15'000}};
  std::vector<FlowRecord> out;
  PacketEvent pkt;
  pkt.key = make_record(1).key;
  pkt.bytes = 100;
  for (int i = 0; i < 5; ++i) {
    pkt.timestamp_ms = 1000 + static_cast<std::uint64_t>(i) * 10;
    pkt.tcp_flags = i == 0 ? tcpflags::kSyn : tcpflags::kAck;
    cache.add(pkt, out);
  }
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cache.active_flows(), 1u);
  cache.flush_all(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].packets, 5u);
  EXPECT_EQ(out[0].bytes, 500u);
  EXPECT_EQ(out[0].tcp_flags, tcpflags::kSyn | tcpflags::kAck);
  EXPECT_EQ(out[0].start_ms, 1000u);
  EXPECT_EQ(out[0].end_ms, 1040u);
}

TEST(FlowCacheTest, IdleTimeoutExpires) {
  FlowCache cache{{.active_timeout_ms = 600'000, .idle_timeout_ms = 10'000}};
  std::vector<FlowRecord> out;
  PacketEvent a;
  a.key = make_record(1).key;
  a.timestamp_ms = 0;
  a.bytes = 10;
  cache.add(a, out);
  PacketEvent b;
  b.key = make_record(2).key;
  b.timestamp_ms = 30'000;  // sweeps out flow A
  b.bytes = 10;
  cache.add(b, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, a.key);
}

TEST(FlowCacheTest, ActiveTimeoutSplitsLongFlow) {
  FlowCache cache{{.active_timeout_ms = 60'000, .idle_timeout_ms = 600'000}};
  std::vector<FlowRecord> out;
  PacketEvent pkt;
  pkt.key = make_record(3).key;
  pkt.bytes = 1;
  for (std::uint64_t t = 0; t <= 70'000; t += 1'000) {
    pkt.timestamp_ms = t;
    cache.add(pkt, out);
  }
  EXPECT_GE(out.size(), 1u);  // at least one active-timeout export
}

TEST(FlowCacheTest, MaxEntriesEmergencyExpiryBoundsResidency) {
  // Under key churn the cache must stay within max_entries (emergency
  // expiry, as routers evict under table pressure) while conserving every
  // packet and byte across the records it exports.
  constexpr std::size_t kMaxEntries = 16;
  FlowCache cache{{.active_timeout_ms = 600'000,
                   .idle_timeout_ms = 600'000,  // only the bound can expire
                   .max_entries = kMaxEntries}};
  std::vector<FlowRecord> out;
  constexpr std::uint64_t kPackets = 500;
  std::uint64_t bytes_in = 0;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    PacketEvent pkt;
    pkt.key = make_record(1).key;
    pkt.key.src_port = static_cast<std::uint16_t>(i);  // distinct keys
    pkt.bytes = 40 + static_cast<std::uint32_t>(i % 7);
    pkt.timestamp_ms = 1000 + i;
    bytes_in += pkt.bytes;
    cache.add(pkt, out);
    EXPECT_LE(cache.active_flows(), kMaxEntries) << "packet " << i;
  }
  EXPECT_GE(out.size(), kPackets - kMaxEntries);  // churn forced exports
  cache.flush_all(out);
  EXPECT_EQ(cache.active_flows(), 0u);

  // Conservation: every packet and byte surfaces in exactly one record,
  // and no key is exported twice without an intervening re-insert.
  std::uint64_t packets_out = 0;
  std::uint64_t bytes_out = 0;
  std::set<std::uint16_t> ports;
  for (const auto& rec : out) {
    packets_out += rec.packets;
    bytes_out += rec.bytes;
    EXPECT_TRUE(ports.insert(rec.key.src_port).second)
        << "duplicate export for port " << rec.key.src_port;
  }
  EXPECT_EQ(packets_out, kPackets);
  EXPECT_EQ(bytes_out, bytes_in);
  EXPECT_EQ(ports.size(), kPackets);  // one record per distinct key
}

TEST(EstablishedTcpTest, RequiresAckAndPush) {
  FlowRecord rec = make_record(1);
  rec.tcp_flags = tcpflags::kSyn;
  EXPECT_FALSE(rec.shows_established_tcp());
  rec.tcp_flags = tcpflags::kSyn | tcpflags::kAck | tcpflags::kPsh;
  EXPECT_TRUE(rec.shows_established_tcp());
  rec.key.proto = 17;  // UDP always passes
  rec.tcp_flags = 0;
  EXPECT_TRUE(rec.shows_established_tcp());
}

}  // namespace
}  // namespace haystack::flow
