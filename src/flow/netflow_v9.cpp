#include "flow/netflow_v9.hpp"

#include <algorithm>
#include <array>
#include <type_traits>

namespace haystack::flow::nf9 {

namespace {

struct FieldSpec {
  FieldType type;
  std::uint16_t length;
};

// Record layouts. Field order matters on the wire; both templates put the
// addresses first, then ports/proto/flags, then counters and times.
constexpr std::array<FieldSpec, 11> kV4Fields = {{
    {FieldType::kIpv4SrcAddr, 4},
    {FieldType::kIpv4DstAddr, 4},
    {FieldType::kL4SrcPort, 2},
    {FieldType::kL4DstPort, 2},
    {FieldType::kProtocol, 1},
    {FieldType::kTcpFlags, 1},
    {FieldType::kInPkts, 8},
    {FieldType::kInBytes, 8},
    {FieldType::kFirstSwitched, 4},
    {FieldType::kLastSwitched, 4},
    {FieldType::kSamplingInterval, 4},
}};

constexpr std::array<FieldSpec, 11> kV6Fields = {{
    {FieldType::kIpv6SrcAddr, 16},
    {FieldType::kIpv6DstAddr, 16},
    {FieldType::kL4SrcPort, 2},
    {FieldType::kL4DstPort, 2},
    {FieldType::kProtocol, 1},
    {FieldType::kTcpFlags, 1},
    {FieldType::kInPkts, 8},
    {FieldType::kInBytes, 8},
    {FieldType::kFirstSwitched, 4},
    {FieldType::kLastSwitched, 4},
    {FieldType::kSamplingInterval, 4},
}};

void write_record(ByteWriter& w, const FlowRecord& rec) {
  const auto src = rec.key.src.bytes();
  const auto dst = rec.key.dst.bytes();
  if (rec.key.src.is_v4()) {
    w.bytes(std::span{src}.subspan(12));
    w.bytes(std::span{dst}.subspan(12));
  } else {
    w.bytes(src);
    w.bytes(dst);
  }
  w.u16(rec.key.src_port);
  w.u16(rec.key.dst_port);
  w.u8(rec.key.proto);
  w.u8(rec.tcp_flags);
  w.u64(rec.packets);
  w.u64(rec.bytes);
  w.u32(static_cast<std::uint32_t>(rec.start_ms));
  w.u32(static_cast<std::uint32_t>(rec.end_ms));
  w.u32(rec.sampling);
}

// Record sinks for the shared decode implementation. The reference sink
// appends FlowRecords via the per-field template walk; the batch sink
// executes the compiled plan into SoA columns, falling back to the walk
// (through a scratch vector) when the plan is not fast.
struct RecordSink {
  std::vector<FlowRecord>* out;
};

struct BatchSink {
  FlowBatch* out;
};

}  // namespace

void Exporter::write_templates(ByteWriter& w) const {
  // Template flowset: id 0, then for each template: id, field count, fields.
  const std::size_t length_offset = w.size() + 2;
  w.u16(0);  // flowset id 0 = template
  w.u16(0);  // length placeholder
  auto emit = [&w](std::uint16_t id, std::span<const FieldSpec> fields) {
    w.u16(id);
    w.u16(static_cast<std::uint16_t>(fields.size()));
    for (const auto& f : fields) {
      w.u16(static_cast<std::uint16_t>(f.type));
      w.u16(f.length);
    }
  };
  emit(kTemplateV4, kV4Fields);
  emit(kTemplateV6, kV6Fields);
  w.patch_u16(length_offset,
              static_cast<std::uint16_t>(w.size() - (length_offset - 2)));
}

std::vector<std::vector<std::uint8_t>> Exporter::export_flows(
    std::span<const FlowRecord> records, std::uint32_t unix_secs) {
  std::vector<std::vector<std::uint8_t>> packets;
  std::size_t index = 0;
  while (index < records.size() || packets.empty()) {
    ByteWriter w;
    // Packet header (20 bytes). Count is patched once known.
    w.u16(9);
    const std::size_t count_offset = w.size();
    w.u16(0);
    w.u32((unix_secs - config_.boot_unix_secs) * 1000U);  // sysUptime (ms)
    w.u32(unix_secs);
    w.u32(packets_sent_);  // sequence = packets sent so far (RFC 3954)
    w.u32(config_.source_id);

    std::uint16_t flowset_count = 0;
    const bool with_templates =
        packets_sent_ % std::max<std::uint32_t>(
                            1, config_.template_refresh_packets) ==
        0;
    if (with_templates) {
      write_templates(w);
      ++flowset_count;
    }

    // Partition this packet's records by family, one data flowset each.
    const std::size_t batch_end =
        std::min(records.size(), index + config_.max_records_per_packet);
    for (const bool v4 : {true, false}) {
      std::size_t n_here = 0;
      for (std::size_t i = index; i < batch_end; ++i) {
        if (records[i].key.src.is_v4() == v4) ++n_here;
      }
      if (n_here == 0) continue;
      const std::size_t length_offset = w.size() + 2;
      w.u16(v4 ? kTemplateV4 : kTemplateV6);
      w.u16(0);  // length placeholder
      for (std::size_t i = index; i < batch_end; ++i) {
        if (records[i].key.src.is_v4() == v4) write_record(w, records[i]);
      }
      // Pad to 32-bit boundary.
      const std::size_t unpadded = w.size() - (length_offset - 2);
      const std::size_t padding = (4 - unpadded % 4) % 4;
      w.pad(padding);
      w.patch_u16(length_offset,
                  static_cast<std::uint16_t>(unpadded + padding));
      ++flowset_count;
    }

    w.patch_u16(count_offset, flowset_count);
    index = batch_end;
    ++packets_sent_;
    packets.push_back(w.take());
    if (index >= records.size()) break;
  }
  return packets;
}

bool Collector::ingest(std::span<const std::uint8_t> packet,
                       std::vector<FlowRecord>& out) {
  RecordSink sink{&out};
  return ingest_impl(packet, sink);
}

bool Collector::ingest_batch(std::span<const std::uint8_t> packet,
                             FlowBatch& out) {
  BatchSink sink{&out};
  return ingest_impl(packet, sink);
}

template <typename Sink>
bool Collector::ingest_impl(std::span<const std::uint8_t> packet,
                            Sink& sink) {
  ByteReader r{packet};
  const std::uint16_t version = r.u16();
  const std::uint16_t count = r.u16();
  const std::uint32_t uptime = r.u32();
  r.u32();  // unix secs
  const std::uint32_t sequence = r.u32();
  const std::uint32_t source_id = r.u32();
  if (!r.ok() || version != 9) {
    ++stats_.malformed_packets;
    return false;
  }

  if (config_.dedup_window > 0 && deduper_.seen_before(packet)) {
    ++stats_.duplicate_packets;
    return true;
  }

  // Exporter-restart and loss detection. Two independent restart signals:
  // a sequence number far behind expectation, and a sysUptime regression
  // (a rebooted exporter's uptime restarts near zero even when its new
  // sequence happens to land inside the reorder window).
  PerSource& source = sources_[source_id];
  auto outcome = source.tracker.classify(sequence);
  const bool uptime_restarted =
      source.have_uptime &&
      static_cast<std::int32_t>(uptime - source.last_uptime) <
          -static_cast<std::int64_t>(config_.uptime_restart_slack_ms);
  if (outcome.event == SequenceEvent::kRestart || uptime_restarted) {
    handle_restart(source_id, source);
    outcome = source.tracker.classify(sequence);  // now kFirst
  }
  switch (outcome.event) {
    case SequenceEvent::kGap:
      ++stats_.sequence_gaps;
      stats_.estimated_lost_packets += outcome.lost_units;
      if (config_.recorder != nullptr) {
        config_.recorder->record(obs::EventKind::kSequenceGap, source_id,
                                 outcome.lost_units);
      }
      break;
    case SequenceEvent::kReplay:
      ++stats_.reordered_packets;
      if (config_.recorder != nullptr) {
        config_.recorder->record(obs::EventKind::kSequenceReplay, source_id,
                                 1);
      }
      break;
    default:
      break;
  }
  source.tracker.commit(sequence, 1, outcome);
  if (outcome.event != SequenceEvent::kReplay) {
    source.have_uptime = true;
    source.last_uptime = uptime;
  }

  // `count` in v9 counts *records plus templates*; implementations disagree,
  // so we use it only as a sanity bound and otherwise walk flowsets until
  // the packet is exhausted.
  (void)count;
  while (r.ok() && r.remaining() >= 4) {
    const std::uint16_t flowset_id = r.u16();
    const std::uint16_t length = r.u16();
    if (length < 4 || static_cast<std::size_t>(length - 4) > r.remaining()) {
      ++stats_.malformed_packets;
      return false;
    }
    ByteReader body = r.slice(length - 4U);
    if (flowset_id == 0) {
      if (!decode_template_flowset(body, source_id, sink)) {
        ++stats_.malformed_packets;
        return false;
      }
    } else if (flowset_id >= 256) {
      const auto it = templates_.find({source_id, flowset_id});
      if (it == templates_.end()) {
        // Not an error: the template may arrive later. Park the flowset
        // body so it can be decoded retroactively.
        ++stats_.unknown_template_flowsets;
        park_flowset(source_id, flowset_id, body);
      } else if (!decode_data(body, it->second, sink)) {
        ++stats_.malformed_packets;
        return false;
      }
    }
    // Options templates (id 1) and anything in 2..255: skipped.
  }
  if (!r.ok()) {
    ++stats_.malformed_packets;
    return false;
  }
  ++stats_.packets;
  return true;
}

void Collector::handle_restart(std::uint32_t source_id, PerSource& source) {
  ++stats_.exporter_restarts;
  ++source.restarts;
  if (config_.recorder != nullptr) {
    config_.recorder->record(obs::EventKind::kExporterRestart, source_id,
                             source.restarts);
  }
  source.tracker.reset();
  source.have_uptime = false;
  // The old incarnation's templates no longer describe the new stream.
  templates_.erase(
      templates_.lower_bound({source_id, 0}),
      templates_.upper_bound({source_id, 0xffffU}));
  // Parked flowsets from the dead incarnation can never be decoded.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->source_id == source_id) {
      ++stats_.evicted_flowsets;
      if (config_.recorder != nullptr) {
        config_.recorder->record(obs::EventKind::kTemplateEvicted, source_id,
                                 it->template_id);
      }
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void Collector::park_flowset(std::uint32_t source_id,
                             std::uint16_t template_id, ByteReader& body) {
  if (config_.max_pending_flowsets == 0) return;
  if (pending_.size() >= config_.max_pending_flowsets) {
    ++stats_.evicted_flowsets;
    if (config_.recorder != nullptr) {
      config_.recorder->record(obs::EventKind::kTemplateEvicted,
                               pending_.front().source_id,
                               pending_.front().template_id);
    }
    pending_.pop_front();
  }
  PendingFlowset parked;
  parked.source_id = source_id;
  parked.template_id = template_id;
  parked.body.resize(body.remaining());
  body.bytes(parked.body);
  pending_.push_back(std::move(parked));
  ++stats_.buffered_flowsets;
  if (config_.recorder != nullptr) {
    config_.recorder->record(obs::EventKind::kTemplateParked, source_id,
                             template_id);
  }
}

template <typename Sink>
void Collector::recover_pending(std::uint32_t source_id,
                                std::uint16_t template_id, Sink& sink) {
  const auto it_tmpl = templates_.find({source_id, template_id});
  if (it_tmpl == templates_.end()) return;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->source_id != source_id || it->template_id != template_id) {
      ++it;
      continue;
    }
    ByteReader body{it->body};
    const std::uint64_t before = stats_.records;
    if (decode_data(body, it_tmpl->second, sink)) {
      ++stats_.recovered_flowsets;
      stats_.recovered_records += stats_.records - before;
      if (config_.recorder != nullptr) {
        config_.recorder->record(obs::EventKind::kTemplateRecovered,
                                 source_id, stats_.records - before);
      }
    } else {
      // The parked bytes do not parse under the learned template.
      ++stats_.evicted_flowsets;
      if (config_.recorder != nullptr) {
        config_.recorder->record(obs::EventKind::kTemplateEvicted, source_id,
                                 template_id);
      }
    }
    it = pending_.erase(it);
  }
}

SourceHealth Collector::health(std::uint32_t source_id) const {
  const auto it = sources_.find(source_id);
  if (it == sources_.end()) return {};
  return {it->second.tracker.received(), it->second.tracker.lost(),
          it->second.restarts};
}

double Collector::estimated_loss() const {
  std::uint64_t received = 0;
  std::uint64_t lost = 0;
  for (const auto& [id, source] : sources_) {
    received += source.tracker.received();
    lost += source.tracker.lost();
  }
  const std::uint64_t total = received + lost;
  return total == 0 ? 0.0
                    : static_cast<double>(lost) / static_cast<double>(total);
}

std::size_t Collector::pending_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& p : pending_) bytes += p.body.size();
  return bytes;
}

template <typename Sink>
bool Collector::decode_template_flowset(ByteReader& r,
                                        std::uint32_t source_id,
                                        Sink& sink) {
  while (r.ok() && r.remaining() >= 4) {
    const std::uint16_t template_id = r.u16();
    const std::uint16_t field_count = r.u16();
    if (template_id < 256) return false;
    // Each field spec is 4 bytes; a count the body cannot hold is a
    // corrupted length field, not a template (and must be rejected before
    // reserve() turns it into an allocation).
    if (std::size_t{field_count} * 4 > r.remaining()) return false;
    TemplateEntry entry;
    entry.fields.reserve(field_count);
    for (std::uint16_t i = 0; i < field_count; ++i) {
      const std::uint16_t type = r.u16();
      const std::uint16_t length = r.u16();
      if (!r.ok()) return false;
      entry.fields.push_back({type, length});
    }
    // Compile the decode plan once per (re)announcement: a redefined
    // template id gets a fresh plan along with its fresh field list.
    std::vector<plan::WireField> wire;
    wire.reserve(entry.fields.size());
    for (const auto& f : entry.fields) {
      wire.push_back({f.type, f.length, false});
    }
    entry.plan = plan::compile_netflow_v9(wire);
    templates_[{source_id, template_id}] = std::move(entry);
    ++stats_.templates_learned;
    recover_pending(source_id, template_id, sink);
  }
  return r.ok();
}

template <typename Sink>
bool Collector::decode_data(ByteReader& r, const TemplateEntry& entry,
                            Sink& sink) {
  if constexpr (std::is_same_v<Sink, BatchSink>) {
    if (entry.plan.fast) {
      if (entry.plan.record_len == 0) return false;  // as the reference
      stats_.records += plan::execute(entry.plan, r.rest(), *sink.out);
      return true;
    }
    // Plan cannot represent the template (never for v9 in practice, but
    // kept for symmetry with IPFIX): reference walk through a scratch
    // vector, preserving partial-decode behavior.
    std::vector<FlowRecord> scratch;
    const bool ok = decode_data_flowset(r, entry.fields, scratch);
    for (const auto& rec : scratch) sink.out->push(rec);
    return ok;
  } else {
    return decode_data_flowset(r, entry.fields, *sink.out);
  }
}

bool Collector::decode_data_flowset(ByteReader& r, const Template& tmpl,
                                    std::vector<FlowRecord>& out) {
  std::size_t rec_len = 0;
  for (const auto& f : tmpl) rec_len += f.length;
  if (rec_len == 0) return false;

  while (r.ok() && r.remaining() >= rec_len) {
    FlowRecord rec;
    bool v6_src = false;
    for (const auto& f : tmpl) {
      // Record framing is defined by the template's *declared* lengths. A
      // known field type whose declared length is not a supported encoding
      // must be skipped at the declared length — decoding it at the
      // "expected" size would shift every subsequent field of every record
      // in the flowset, silently producing garbage records.
      const auto fixed = [&](std::uint16_t want) {
        if (f.length == want) return true;
        r.skip(f.length);
        return false;
      };
      switch (static_cast<FieldType>(f.type)) {
        case FieldType::kIpv4SrcAddr:
          if (fixed(4)) rec.key.src = net::IpAddress::v4(r.u32());
          break;
        case FieldType::kIpv4DstAddr:
          if (fixed(4)) rec.key.dst = net::IpAddress::v4(r.u32());
          break;
        case FieldType::kIpv6SrcAddr:
          if (fixed(16)) {
            const std::uint64_t hi = r.u64();
            const std::uint64_t lo = r.u64();
            rec.key.src = net::IpAddress::v6(hi, lo);
            v6_src = true;
          }
          break;
        case FieldType::kIpv6DstAddr:
          if (fixed(16)) {
            const std::uint64_t hi = r.u64();
            const std::uint64_t lo = r.u64();
            rec.key.dst = net::IpAddress::v6(hi, lo);
          }
          break;
        case FieldType::kL4SrcPort:
          if (fixed(2)) rec.key.src_port = r.u16();
          break;
        case FieldType::kL4DstPort:
          if (fixed(2)) rec.key.dst_port = r.u16();
          break;
        case FieldType::kProtocol:
          if (fixed(1)) rec.key.proto = r.u8();
          break;
        case FieldType::kTcpFlags:
          if (fixed(1)) rec.tcp_flags = r.u8();
          break;
        case FieldType::kInPkts:
          if (f.length == 8 || f.length == 4) {
            rec.packets = f.length == 8 ? r.u64() : r.u32();
          } else {
            r.skip(f.length);
          }
          break;
        case FieldType::kInBytes:
          if (f.length == 8 || f.length == 4) {
            rec.bytes = f.length == 8 ? r.u64() : r.u32();
          } else {
            r.skip(f.length);
          }
          break;
        case FieldType::kFirstSwitched:
          if (fixed(4)) rec.start_ms = r.u32();
          break;
        case FieldType::kLastSwitched:
          if (fixed(4)) rec.end_ms = r.u32();
          break;
        case FieldType::kSamplingInterval:
          if (fixed(4)) rec.sampling = r.u32();
          break;
        default:
          r.skip(f.length);
          break;
      }
    }
    (void)v6_src;
    if (!r.ok()) return false;
    out.push_back(rec);
    ++stats_.records;
  }
  // Remaining bytes are padding (< rec_len); accept.
  return r.ok();
}

}  // namespace haystack::flow::nf9
