#include "dns/fqdn.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace haystack::dns {

namespace {

// Embedded subset of the public-suffix list: the suffixes that occur in the
// device catalog and backend simulation, plus the common generic TLDs. A
// multi-label entry means "the registrable domain has one more label than
// this suffix".
constexpr std::array<std::string_view, 22> kSuffixes = {
    "com",    "net",   "org",    "io",     "co",    "tv",     "cn",
    "de",     "uk",    "eu",     "info",   "cloud", "biz",    "me",
    "co.uk",  "org.uk", "com.cn", "net.cn", "co.jp", "com.au", "co.kr",
    "com.br",
};

bool label_ok(std::string_view label) {
  if (label.empty() || label.size() > 63) return false;
  return std::all_of(label.begin(), label.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '-' || c == '_' || c == '*';
  });
}

}  // namespace

bool is_public_suffix(std::string_view suffix) noexcept {
  return std::find(kSuffixes.begin(), kSuffixes.end(), suffix) !=
         kSuffixes.end();
}

Fqdn::Fqdn(std::string_view name) {
  if (name.empty()) return;
  std::string normalized;
  normalized.reserve(name.size());
  for (const char c : name) {
    normalized += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (!normalized.empty() && normalized.back() == '.') normalized.pop_back();
  if (normalized.empty() || normalized.size() > 253) return;

  // Validate labels.
  std::size_t start = 0;
  for (;;) {
    const std::size_t dot = normalized.find('.', start);
    const std::string_view label =
        std::string_view{normalized}.substr(start, dot - start);
    if (!label_ok(label)) return;
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  name_ = std::move(normalized);
  valid_ = true;
}

std::vector<std::string_view> Fqdn::labels() const {
  std::vector<std::string_view> out;
  if (!valid_) return out;
  const std::string_view sv{name_};
  std::size_t start = 0;
  for (;;) {
    const std::size_t dot = sv.find('.', start);
    out.push_back(sv.substr(start, dot - start));
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return out;
}

std::size_t Fqdn::label_count() const noexcept {
  if (!valid_) return 0;
  return static_cast<std::size_t>(
             std::count(name_.begin(), name_.end(), '.')) +
         1;
}

Fqdn Fqdn::registrable() const {
  if (!valid_) return {};
  const auto parts = labels();
  if (parts.size() <= 1) return *this;

  // Find the longest public suffix that is a proper suffix of the name.
  std::size_t suffix_labels = 0;
  for (std::size_t take = 1; take < parts.size(); ++take) {
    std::string candidate;
    for (std::size_t i = parts.size() - take; i < parts.size(); ++i) {
      if (!candidate.empty()) candidate += '.';
      candidate += parts[i];
    }
    if (is_public_suffix(candidate)) suffix_labels = take;
  }
  if (suffix_labels == 0) suffix_labels = 1;  // unknown TLD: assume 1 label
  const std::size_t keep = std::min(parts.size(), suffix_labels + 1);

  std::string out;
  for (std::size_t i = parts.size() - keep; i < parts.size(); ++i) {
    if (!out.empty()) out += '.';
    out += parts[i];
  }
  return Fqdn{out};
}

bool Fqdn::is_subdomain_of(const Fqdn& ancestor) const noexcept {
  if (!valid_ || !ancestor.valid_) return false;
  if (name_ == ancestor.name_) return true;
  if (name_.size() <= ancestor.name_.size() + 1) return false;
  const std::size_t offset = name_.size() - ancestor.name_.size();
  return name_[offset - 1] == '.' &&
         name_.compare(offset, std::string::npos, ancestor.name_) == 0;
}

bool Fqdn::matches_pattern(const Fqdn& pattern) const noexcept {
  if (!valid_ || !pattern.valid_) return false;
  const std::string& p = pattern.name_;
  if (p.rfind("*.", 0) == 0) {
    const std::string_view tail = std::string_view{p}.substr(2);
    if (name_.size() <= tail.size() + 1) return false;
    const std::size_t offset = name_.size() - tail.size();
    if (name_.compare(offset, std::string::npos, tail) != 0) return false;
    if (name_[offset - 1] != '.') return false;
    // Exactly one label may precede the suffix.
    return name_.find('.') == offset - 1;
  }
  return name_ == p;
}

}  // namespace haystack::dns
