#include "flow/delta_wire.hpp"

#include <limits>

#include "flow/wire.hpp"

namespace haystack::flow {

namespace {

bool fail(std::string* error, const char* reason) {
  if (error != nullptr) *error = reason;
  return false;
}

// Fixed-size portion of one serialized row: u64 subscriber + u32 label +
// 2×u64 mask + u64 packets + u32 first_seen.
constexpr std::size_t kRowBytes = 8 + 4 + 8 + 8 + 8 + 4;

}  // namespace

std::vector<std::uint8_t> encode_delta(const EvidenceDelta& delta) {
  ByteWriter w;
  w.u32(kDeltaMagic);
  w.u32(kDeltaVersion);
  w.u32(delta.collector);
  w.u32(delta.seq);
  w.u32(delta.epoch);
  w.u8(static_cast<std::uint8_t>(delta.kind));
  w.u64(delta.threshold_bits);
  w.u64(delta.flows);
  w.u64(delta.matched);
  w.u32(static_cast<std::uint32_t>(delta.labels.size()));
  for (const std::string& label : delta.labels) {
    w.u16(static_cast<std::uint16_t>(label.size()));
    w.bytes({reinterpret_cast<const std::uint8_t*>(label.data()),
             label.size()});
  }
  w.u64(delta.rows.size());
  for (const DeltaRow& row : delta.rows) {
    w.u64(row.subscriber);
    w.u32(row.label);
    w.u64(row.mask0);
    w.u64(row.mask1);
    w.u64(row.packets);
    w.u32(row.first_seen);
  }
  return w.take();
}

bool decode_delta(std::span<const std::uint8_t> datagram, EvidenceDelta& out,
                  std::string* error) {
  ByteReader r{datagram};
  if (r.u32() != kDeltaMagic) return fail(error, "bad magic");
  if (r.u32() != kDeltaVersion) return fail(error, "unsupported version");
  out.collector = r.u32();
  out.seq = r.u32();
  out.epoch = r.u32();
  const std::uint8_t kind = r.u8();
  if (!r.ok()) return fail(error, "truncated header");
  if (kind > static_cast<std::uint8_t>(DeltaKind::kSnapshot)) {
    return fail(error, "unknown delta kind");
  }
  out.kind = static_cast<DeltaKind>(kind);
  out.threshold_bits = r.u64();
  out.flows = r.u64();
  out.matched = r.u64();

  const std::uint32_t label_count = r.u32();
  if (!r.ok()) return fail(error, "truncated header");
  // Each label costs at least its 2-byte length prefix; a count the buffer
  // cannot possibly hold is rejected before any allocation.
  if (static_cast<std::size_t>(label_count) * 2 > r.remaining()) {
    return fail(error, "label count exceeds datagram");
  }
  out.labels.clear();
  out.labels.reserve(label_count);
  for (std::uint32_t i = 0; i < label_count; ++i) {
    const std::uint16_t len = r.u16();
    if (len > r.remaining()) return fail(error, "truncated label");
    std::string label(len, '\0');
    if (!r.bytes({reinterpret_cast<std::uint8_t*>(label.data()), label.size()})) {
      return fail(error, "truncated label");
    }
    out.labels.push_back(std::move(label));
  }

  const std::uint64_t row_count = r.u64();
  if (!r.ok()) return fail(error, "truncated row count");
  // Strict: a delta is a single datagram, so the row section must consume
  // exactly the remaining bytes — this rejects both truncation (including
  // ImpairedLink tail-cuts) and trailing garbage. The division guard keeps
  // the product from wrapping on an adversarial count.
  if (row_count > r.remaining() / kRowBytes ||
      row_count * kRowBytes != r.remaining()) {
    return fail(error, "row section size mismatch");
  }
  out.rows.clear();
  out.rows.reserve(static_cast<std::size_t>(row_count));
  for (std::uint64_t i = 0; i < row_count; ++i) {
    DeltaRow row;
    row.subscriber = r.u64();
    row.label = r.u32();
    row.mask0 = r.u64();
    row.mask1 = r.u64();
    row.packets = r.u64();
    row.first_seen = r.u32();
    if (row.label >= label_count) return fail(error, "label index out of range");
    out.rows.push_back(row);
  }
  if (!r.ok() || r.remaining() != 0) return fail(error, "truncated rows");
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace haystack::flow
