// IXP-scale scan: detect IoT device IPs across the exchange's member ASes
// for one day (Sec. 6.3) — IPFIX at an order of magnitude lower sampling,
// the established-TCP spoofing guard, and routing asymmetry all apply.
//
// Usage: ixp_scan [eyeball_households] [day]
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>

#include "core/detector.hpp"
#include "simnet/backend.hpp"
#include "simnet/ixp.hpp"
#include "simnet/manual_analysis.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace haystack;
  const std::uint32_t households =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 40'000;
  const util::DayBin day =
      argc > 2 ? static_cast<util::DayBin>(std::atoi(argv[2])) : 0;

  simnet::Catalog catalog;
  simnet::Backend backend{catalog, simnet::BackendConfig{}};
  const core::RuleSet rules = simnet::build_ruleset(backend);
  simnet::DomainRateModel rates{catalog, 7};
  simnet::WildIxpSim ixp{backend, rates,
                         {.eyeball_households = households}};

  std::cout << "Scanning IXP fabric (largest eyeball: " << households
            << " households), day " << util::day_label(day) << " ...\n";

  // At the IXP the subscriber key is the observed device IP (no line
  // identifiers exist mid-network).
  core::Detector detector{rules.hitlist, rules, {.threshold = 0.4}};
  std::map<net::Asn, std::set<net::IpAddress>> per_member;
  std::uint64_t flows = 0;
  ixp.day_observations(day, [&](const simnet::IxpObs& obs) {
    ++flows;
    const auto hit = detector.observe(
        obs.device_ip.hash(), obs.flow.key.dst, obs.flow.key.dst_port,
        obs.flow.packets, util::day_start(day));
    if (hit) per_member[obs.member].insert(obs.device_ip);
  });

  std::set<std::uint64_t> detected_ips;
  detector.for_each_evidence([&](core::SubscriberKey ip,
                                 core::ServiceId service,
                                 const core::Evidence&) {
    if (detector.detected(ip, service)) detected_ips.insert(ip);
  });

  // Per-member skew (the Fig. 16 picture).
  std::vector<std::pair<std::size_t, net::Asn>> ranked;
  for (const auto& [asn, ips] : per_member) {
    ranked.emplace_back(ips.size(), asn);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  util::TextTable table;
  table.header({"Member AS", "Role", "Unique device IPs"});
  for (std::size_t i = 0; i < std::min<std::size_t>(ranked.size(), 12);
       ++i) {
    const auto* info = backend.asns().info(ranked[i].second);
    table.row({"AS" + std::to_string(ranked[i].second),
               info != nullptr && info->role == net::AsRole::kEyeball
                   ? "eyeball"
                   : "other",
               util::fmt_count(ranked[i].first)});
  }
  table.print(std::cout);

  std::cout << "\n" << util::fmt_count(flows) << " sampled IPFIX flows; "
            << util::fmt_count(detected_ips.size())
            << " device IPs detected across "
            << util::fmt_count(per_member.size())
            << " member ASes. The top members are eyeballs (paper Fig. 16); "
               "a long tail of members carries isolated devices.\n";
  return 0;
}
